// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every randomized algorithm in this repository.
//
// The generator is SplitMix64 (Steele, Lea, Flood; JPDC 2014 public-domain
// reference sequence). It is not cryptographically secure, but it is
// reproducible across platforms and Go versions — which math/rand does not
// guarantee — and it supports cheap stream splitting so that parallel
// workers draw from independent, seed-derived sequences.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New so that distinct seeds produce
// well-separated streams.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's internal SplitMix64 state. Together with
// SetState it lets a walk be suspended on one process and resumed on
// another (the cross-process shard RPC ships the state in its walk-segment
// requests) while consuming exactly the same stream as an uninterrupted
// generator.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state, resuming the stream
// a previous State() call captured.
func (r *RNG) SetState(s uint64) { r.state = s }

// Split returns a new generator whose stream is a deterministic function of
// the parent's seed and i, suitable for giving each parallel worker its own
// independent sequence. The parent's state is not advanced.
func (r *RNG) Split(i uint64) *RNG {
	return &RNG{state: r.SplitState(i)}
}

// SplitState returns the initial state of the stream Split(i) would
// produce, without allocating a generator. New(SplitState(i)) and Split(i)
// draw identical sequences; callers that derive one stream per walk trial
// use this to enumerate start states (e.g. onto the wire) cheaply.
func (r *RNG) SplitState(i uint64) uint64 {
	// Mix the stream index through one SplitMix64 round so adjacent indices
	// land far apart in the state space.
	z := r.state + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the SplitMix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n called with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits keeps the result exactly uniform.
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a sample from the geometric
// distribution with support {0, 1, 2, ...}. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inverse transform: floor(log(U) / log(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *RNG) Perm(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in selection
// order. It panics if k > n or k < 0. For k close to n it uses a shuffle;
// for sparse draws it uses rejection with a set.
func (r *RNG) Sample(n, k int) []int32 {
	if k < 0 || k > n {
		panic("xrand: Sample requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*3 >= n {
		perm := make([]int32, n)
		r.Perm(perm)
		return perm[:k]
	}
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		v := r.Int31n(int32(n))
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}
