// Package trace generates and replays dynamic-graph update streams — the
// workload shape behind the paper's motivating scenario ("real-time
// SimRank queries on graphs with frequent updates", §1). An update stream
// is a sequence of edge insertions and deletions that is valid against a
// starting graph: every deletion removes an edge that exists at that point
// and every insertion adds one that does not.
//
// Three generators cover the churn patterns the dynamic experiments use:
//
//   - Uniform: adds land on uniformly random non-edges, deletes hit
//     uniformly random existing edges — unstructured churn.
//   - Preferential: adds attach to endpoints sampled by in-degree, the
//     rich-get-richer growth of social graphs.
//   - SlidingWindow: every insertion beyond a window evicts the oldest
//     inserted edge, modeling a stream with bounded retention.
//
// Apply replays a stream onto a graph; Inverse turns a stream into its
// exact undo, so experiments can rewind to the starting graph without
// cloning it.
package trace

import (
	"fmt"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// OpKind says whether an Op inserts or deletes an edge.
type OpKind uint8

const (
	// AddEdge inserts the directed edge U -> V.
	AddEdge OpKind = iota
	// RemoveEdge deletes the directed edge U -> V.
	RemoveEdge
)

// String returns "add" or "remove".
func (k OpKind) String() string {
	switch k {
	case AddEdge:
		return "add"
	case RemoveEdge:
		return "remove"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one edge update.
type Op struct {
	Kind OpKind
	U, V graph.NodeID
}

// Apply replays ops onto g in order. It stops at the first failing update
// and returns the error with the offending index.
func Apply(g *graph.Graph, ops []Op) error {
	for i, op := range ops {
		var err error
		switch op.Kind {
		case AddEdge:
			err = g.AddEdge(op.U, op.V)
		case RemoveEdge:
			err = g.RemoveEdge(op.U, op.V)
		default:
			err = fmt.Errorf("trace: unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("trace: op %d (%s %d->%d): %w", i, op.Kind, op.U, op.V, err)
		}
	}
	return nil
}

// Inverse returns the undo stream: the ops reversed, with adds and removes
// swapped. Applying ops then Inverse(ops) restores the original edge
// multiset.
func Inverse(ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, op := range ops {
		inv := op
		switch op.Kind {
		case AddEdge:
			inv.Kind = RemoveEdge
		case RemoveEdge:
			inv.Kind = AddEdge
		}
		out[len(ops)-1-i] = inv
	}
	return out
}

// edgeSet tracks the evolving edge set during generation so deletes always
// hit live edges and adds never duplicate one. It starts from a snapshot of
// g and never mutates g itself.
type edgeSet struct {
	list  [][2]graph.NodeID
	index map[[2]graph.NodeID]int // position in list
}

func newEdgeSet(g *graph.Graph) *edgeSet {
	s := &edgeSet{index: make(map[[2]graph.NodeID]int)}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			s.add([2]graph.NodeID{graph.NodeID(u), v})
		}
	}
	return s
}

func (s *edgeSet) add(e [2]graph.NodeID) bool {
	if _, ok := s.index[e]; ok {
		return false
	}
	s.index[e] = len(s.list)
	s.list = append(s.list, e)
	return true
}

func (s *edgeSet) removeAt(i int) [2]graph.NodeID {
	e := s.list[i]
	last := len(s.list) - 1
	s.list[i] = s.list[last]
	s.index[s.list[i]] = i
	s.list = s.list[:last]
	delete(s.index, e)
	return e
}

func (s *edgeSet) remove(e [2]graph.NodeID) bool {
	i, ok := s.index[e]
	if !ok {
		return false
	}
	s.removeAt(i)
	return true
}

func (s *edgeSet) has(e [2]graph.NodeID) bool { _, ok := s.index[e]; return ok }
func (s *edgeSet) len() int                   { return len(s.list) }

// sampleNonEdge draws a uniformly random (u, v) pair that is neither a
// self-loop nor a live edge. It returns false when the graph is within a
// factor of near-completeness where rejection sampling stalls.
func (s *edgeSet) sampleNonEdge(n int, rng *xrand.RNG) ([2]graph.NodeID, bool) {
	if n < 2 {
		return [2]graph.NodeID{}, false
	}
	possible := int64(n) * int64(n-1)
	if int64(s.len()) >= possible*9/10 {
		return [2]graph.NodeID{}, false
	}
	for tries := 0; tries < 64*n; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if e := [2]graph.NodeID{u, v}; !s.has(e) {
			return e, true
		}
	}
	return [2]graph.NodeID{}, false
}

// Uniform generates nOps updates against g: each op is an insertion with
// probability pAdd (of a uniformly random non-edge) and otherwise a
// deletion of a uniformly random live edge. When one side is impossible
// (no edges left to delete, or the graph is nearly complete) the other is
// used instead.
func Uniform(g *graph.Graph, nOps int, pAdd float64, seed uint64) ([]Op, error) {
	if err := checkArgs(g, nOps, pAdd); err != nil {
		return nil, err
	}
	rng := xrand.New(mix(seed))
	set := newEdgeSet(g)
	n := g.NumNodes()
	ops := make([]Op, 0, nOps)
	for len(ops) < nOps {
		wantAdd := rng.Bernoulli(pAdd)
		if !wantAdd && set.len() == 0 {
			wantAdd = true
		}
		if wantAdd {
			e, ok := set.sampleNonEdge(n, rng)
			if !ok {
				if set.len() == 0 {
					return nil, fmt.Errorf("trace: graph too small to generate updates")
				}
				wantAdd = false
			} else {
				set.add(e)
				ops = append(ops, Op{Kind: AddEdge, U: e[0], V: e[1]})
				continue
			}
		}
		e := set.removeAt(rng.Intn(set.len()))
		ops = append(ops, Op{Kind: RemoveEdge, U: e[0], V: e[1]})
	}
	return ops, nil
}

// Preferential generates nOps updates where insertions attach preferentially:
// the head is uniform but the tail is sampled proportionally to current
// in-degree (plus one smoothing), so popular nodes keep gaining edges, as
// in social-graph growth. Deletions are uniform over live edges.
func Preferential(g *graph.Graph, nOps int, pAdd float64, seed uint64) ([]Op, error) {
	if err := checkArgs(g, nOps, pAdd); err != nil {
		return nil, err
	}
	rng := xrand.New(mix(seed ^ 0xa5a5a5a5))
	set := newEdgeSet(g)
	n := g.NumNodes()
	// inDeg tracks the evolving in-degrees; targets picks a node with
	// probability proportional to inDeg+1 by sampling the combined mass.
	inDeg := make([]int64, n)
	var totalIn int64
	for v := 0; v < n; v++ {
		inDeg[v] = int64(g.InDegree(graph.NodeID(v)))
		totalIn += inDeg[v]
	}
	sampleTarget := func() graph.NodeID {
		mass := rng.Uint64n(uint64(totalIn + int64(n)))
		for v := 0; v < n; v++ {
			w := uint64(inDeg[v] + 1)
			if mass < w {
				return graph.NodeID(v)
			}
			mass -= w
		}
		return graph.NodeID(n - 1)
	}
	ops := make([]Op, 0, nOps)
	for len(ops) < nOps {
		wantAdd := rng.Bernoulli(pAdd)
		if !wantAdd && set.len() == 0 {
			wantAdd = true
		}
		if wantAdd {
			var e [2]graph.NodeID
			found := false
			for tries := 0; tries < 64*n; tries++ {
				u := graph.NodeID(rng.Intn(n))
				v := sampleTarget()
				if u == v {
					continue
				}
				if cand := [2]graph.NodeID{u, v}; !set.has(cand) {
					e, found = cand, true
					break
				}
			}
			if found {
				set.add(e)
				inDeg[e[1]]++
				totalIn++
				ops = append(ops, Op{Kind: AddEdge, U: e[0], V: e[1]})
				continue
			}
			if set.len() == 0 {
				return nil, fmt.Errorf("trace: graph too dense for preferential insertions")
			}
		}
		e := set.removeAt(rng.Intn(set.len()))
		inDeg[e[1]]--
		totalIn--
		ops = append(ops, Op{Kind: RemoveEdge, U: e[0], V: e[1]})
	}
	return ops, nil
}

// SlidingWindow generates a stream of insertions with bounded retention:
// every insertion beyond the window is immediately preceded by the removal
// of the oldest still-live inserted edge. nOps counts total operations
// (inserts plus the paired evictions).
func SlidingWindow(g *graph.Graph, nOps, window int, seed uint64) ([]Op, error) {
	if err := checkArgs(g, nOps, 0.5); err != nil {
		return nil, err
	}
	if window < 1 {
		return nil, fmt.Errorf("trace: window %d < 1", window)
	}
	rng := xrand.New(mix(seed ^ 0x5bd1e995))
	set := newEdgeSet(g)
	n := g.NumNodes()
	var fifo [][2]graph.NodeID
	ops := make([]Op, 0, nOps)
	for len(ops) < nOps {
		if len(fifo) >= window {
			e := fifo[0]
			fifo = fifo[1:]
			// Every fifo entry is live: only eviction removes inserted
			// edges, so this cannot fail; the check keeps the invariant
			// local instead of relying on it.
			if set.remove(e) {
				ops = append(ops, Op{Kind: RemoveEdge, U: e[0], V: e[1]})
				continue
			}
		}
		e, ok := set.sampleNonEdge(n, rng)
		if !ok {
			return nil, fmt.Errorf("trace: graph too dense for window insertions")
		}
		set.add(e)
		fifo = append(fifo, e)
		ops = append(ops, Op{Kind: AddEdge, U: e[0], V: e[1]})
	}
	return ops, nil
}

func checkArgs(g *graph.Graph, nOps int, pAdd float64) error {
	if g.NumNodes() < 2 {
		return fmt.Errorf("trace: graph has %d nodes; need at least 2", g.NumNodes())
	}
	if nOps < 0 {
		return fmt.Errorf("trace: negative op count %d", nOps)
	}
	if pAdd < 0 || pAdd > 1 {
		return fmt.Errorf("trace: pAdd = %v outside [0, 1]", pAdd)
	}
	return nil
}

// mix keeps seed 0 usable by pushing it through one SplitMix64 round.
func mix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
