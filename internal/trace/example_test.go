package trace_test

import (
	"fmt"

	"probesim/internal/gen"
	"probesim/internal/trace"
)

// Generate churn, replay it, then rewind it exactly — the pattern every
// dynamic experiment uses to run multiple patterns from one starting
// graph.
func Example() {
	g := gen.ErdosRenyi(50, 200, 3)
	before := g.NumEdges()

	ops, err := trace.Uniform(g, 100, 0.7, 42)
	if err != nil {
		panic(err)
	}
	if err := trace.Apply(g, ops); err != nil {
		panic(err)
	}
	fmt.Printf("after churn: edge count changed: %v\n", g.NumEdges() != before)

	if err := trace.Apply(g, trace.Inverse(ops)); err != nil {
		panic(err)
	}
	fmt.Printf("after rewind: %d edges (started with %d)\n", g.NumEdges(), before)
	// Output:
	// after churn: edge count changed: true
	// after rewind: 200 edges (started with 200)
}
