package trace

import (
	"sort"
	"testing"
	"testing/quick"

	"probesim/internal/gen"
	"probesim/internal/graph"
)

// edgeMultiset returns a canonical representation of g's edges for
// equality checks.
func edgeMultiset(g *graph.Graph) [][2]graph.NodeID {
	var out [][2]graph.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			out = append(out, [2]graph.NodeID{graph.NodeID(u), v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func sameEdges(a, b [][2]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUniformApplies(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 3)
	ops, err := Uniform(g, 500, 0.5, 7)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if len(ops) != 500 {
		t.Fatalf("generated %d ops, want 500", len(ops))
	}
	if err := Apply(g, ops); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after stream: %v", err)
	}
}

func TestApplyInverseRoundTrip(t *testing.T) {
	for name, generate := range map[string]func(g *graph.Graph) ([]Op, error){
		"uniform":      func(g *graph.Graph) ([]Op, error) { return Uniform(g, 300, 0.6, 11) },
		"preferential": func(g *graph.Graph) ([]Op, error) { return Preferential(g, 300, 0.6, 11) },
		"window":       func(g *graph.Graph) ([]Op, error) { return SlidingWindow(g, 300, 40, 11) },
	} {
		g := gen.PreferentialAttachment(50, 3, 5)
		before := edgeMultiset(g)
		ops, err := generate(g)
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		if err := Apply(g, ops); err != nil {
			t.Fatalf("%s: Apply: %v", name, err)
		}
		if err := Apply(g, Inverse(ops)); err != nil {
			t.Fatalf("%s: Apply(Inverse): %v", name, err)
		}
		if !sameEdges(before, edgeMultiset(g)) {
			t.Fatalf("%s: edge set differs after apply+undo", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: graph invalid after undo: %v", name, err)
		}
	}
}

func TestInverseShapes(t *testing.T) {
	ops := []Op{
		{Kind: AddEdge, U: 1, V: 2},
		{Kind: RemoveEdge, U: 3, V: 4},
	}
	inv := Inverse(ops)
	want := []Op{
		{Kind: AddEdge, U: 3, V: 4},
		{Kind: RemoveEdge, U: 1, V: 2},
	}
	if len(inv) != len(want) {
		t.Fatalf("len = %d, want %d", len(inv), len(want))
	}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("inv[%d] = %+v, want %+v", i, inv[i], want[i])
		}
	}
}

func TestUniformPureInsertGrowsEdges(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 9)
	m := g.NumEdges()
	ops, err := Uniform(g, 100, 1.0, 3)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	for i, op := range ops {
		if op.Kind != AddEdge {
			t.Fatalf("op %d is %s, want all inserts at pAdd=1", i, op.Kind)
		}
	}
	if err := Apply(g, ops); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != m+100 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), m+100)
	}
}

func TestUniformPureDeleteShrinksToZero(t *testing.T) {
	g := gen.ErdosRenyi(20, 50, 9)
	total := int(g.NumEdges())
	ops, err := Uniform(g, total, 0.0, 4)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if err := Apply(g, ops); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edges = %d after deleting all, want 0", g.NumEdges())
	}
	// Once empty, pAdd=0 must flip to insertion rather than fail.
	more, err := Uniform(g, 5, 0.0, 5)
	if err != nil {
		t.Fatalf("Uniform on empty graph: %v", err)
	}
	if more[0].Kind != AddEdge {
		t.Fatal("first op on empty graph should be forced insertion")
	}
}

func TestSlidingWindowBoundsLiveInsertions(t *testing.T) {
	g := gen.ErdosRenyi(40, 100, 13)
	window := 15
	ops, err := SlidingWindow(g, 400, window, 2)
	if err != nil {
		t.Fatalf("SlidingWindow: %v", err)
	}
	live := 0
	maxLive := 0
	for _, op := range ops {
		switch op.Kind {
		case AddEdge:
			live++
		case RemoveEdge:
			live--
		}
		if live > maxLive {
			maxLive = live
		}
		if live < 0 {
			t.Fatal("more evictions than insertions at some prefix")
		}
	}
	if maxLive > window {
		t.Fatalf("live inserted edges peaked at %d, window is %d", maxLive, window)
	}
	if err := Apply(g, ops); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialSkewsInsertions(t *testing.T) {
	// Give node 0 a large head start; preferential adds should hit it far
	// more often than a uniform target would (~1/n of inserts). The stream
	// is kept short relative to n so node 0's incoming non-edges do not
	// saturate, which would cap its hit count.
	n := 200
	g := graph.New(n)
	for v := 1; v <= 100; v++ {
		if err := g.AddEdge(graph.NodeID(v), 0); err != nil {
			t.Fatal(err)
		}
	}
	ops, err := Preferential(g, 200, 1.0, 21)
	if err != nil {
		t.Fatalf("Preferential: %v", err)
	}
	hits := 0
	adds := 0
	for _, op := range ops {
		if op.Kind != AddEdge {
			continue
		}
		adds++
		if op.V == 0 {
			hits++
		}
	}
	if adds == 0 {
		t.Fatal("no insertions generated")
	}
	uniformShare := float64(adds) / float64(n)
	if float64(hits) < 2*uniformShare {
		t.Fatalf("high-degree node got %d of %d inserts; preferential skew missing (uniform share %.0f)",
			hits, adds, uniformShare)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(30, 90, 17)
	a, err := Uniform(g, 100, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(g, 100, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs for identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorsNeverEmitInvalidOps(t *testing.T) {
	// Any generated stream must apply cleanly to a fresh clone, whatever
	// the seed and mix.
	check := func(seed uint64, pAddRaw uint8) bool {
		g := gen.ErdosRenyi(25, 80, seed%31+1)
		pAdd := float64(pAddRaw) / 255
		ops, err := Uniform(g, 120, pAdd, seed)
		if err != nil {
			return false
		}
		return Apply(g, ops) == nil && g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestArgumentValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	if _, err := Uniform(g, -1, 0.5, 1); err == nil {
		t.Error("negative op count accepted")
	}
	if _, err := Uniform(g, 10, 1.5, 1); err == nil {
		t.Error("pAdd > 1 accepted")
	}
	if _, err := Uniform(graph.New(1), 10, 0.5, 1); err == nil {
		t.Error("single-node graph accepted")
	}
	if _, err := SlidingWindow(g, 10, 0, 1); err == nil {
		t.Error("zero window accepted")
	}
	bad := []Op{{Kind: RemoveEdge, U: 0, V: 9}}
	gEmpty := graph.New(10)
	if err := Apply(gEmpty, bad); err == nil {
		t.Error("removing a missing edge did not error")
	}
	if err := Apply(gEmpty, []Op{{Kind: OpKind(9), U: 0, V: 1}}); err == nil {
		t.Error("unknown op kind did not error")
	}
}

func TestOpKindString(t *testing.T) {
	if AddEdge.String() != "add" || RemoveEdge.String() != "remove" {
		t.Fatalf("OpKind strings = %q, %q", AddEdge.String(), RemoveEdge.String())
	}
	if OpKind(7).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
