package budget

// Cross-process budget propagation. When a query fans out over the shard
// RPC plane, the worker must honor the same constraints the router-side
// Meter enforces — otherwise a remote walk loop could keep burning CPU
// after the query's deadline passed on the router. A Header is the wire
// form of "what is left of this query's budget at send time": remaining
// wall clock and remaining walk/work caps. The worker arms its own Meter
// from it, so the kernels on both sides of the wire run the same
// checkpoint discipline. The remaining-time encoding re-anchors at the
// worker's clock, so the worker's effective deadline lags the router's
// by up to one network delay — a worker can overshoot the query deadline
// by that delay, never undershoot it. The router does not wait for the
// stragglers: its own meter trips on time, the query returns, and the
// per-call socket deadline reaps the request. (Encoding remaining time
// rather than an absolute instant is deliberate: it needs no cross-host
// clock agreement.)

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"
)

// Header is the wire form of a query budget: what remains of it at encode
// time. The zero value means unbounded.
type Header struct {
	// Remaining is the wall clock left until the query's deadline;
	// <= 0 means no deadline.
	Remaining time.Duration
	// MaxWalks and MaxWork are the remaining walk-trial and probe-work
	// caps; <= 0 means uncapped.
	MaxWalks int64
	MaxWork  int64
}

// HeaderSize is the encoded size of a Header in bytes.
const HeaderSize = 24

// Export captures what remains of the meter's budget for propagation to a
// remote worker. A nil meter exports the unbounded Header. A tripped or
// expired meter exports a Header with a 1ns Remaining, so the remote side
// trips at its first poll instead of racing an already-lost deadline.
func (m *Meter) Export() Header {
	if m == nil {
		return Header{}
	}
	var h Header
	if m.hasDL {
		h.Remaining = time.Until(m.deadline)
		if h.Remaining <= 0 || m.stopped.Load() {
			h.Remaining = time.Nanosecond
		}
	} else if m.stopped.Load() {
		h.Remaining = time.Nanosecond
	}
	if m.maxWalks > 0 {
		if h.MaxWalks = m.maxWalks - m.walks.Load(); h.MaxWalks < 1 {
			h.MaxWalks = 1 // crossed: let the remote charge once and trip
		}
	}
	if m.maxWork > 0 {
		if h.MaxWork = m.maxWork - m.work.Load(); h.MaxWork < 1 {
			h.MaxWork = 1
		}
	}
	return h
}

// Arm builds the worker-side meter for one remote request: the decoded
// remaining budget re-anchored at the local clock, combined with ctx (the
// connection/request context) exactly like New combines a caller context
// with Budget.Timeout. Returns nil when nothing constrains the request.
func (h Header) Arm(ctx context.Context) *Meter {
	return New(ctx, h.Remaining, h.MaxWalks, h.MaxWork)
}

// AppendBinary appends the fixed-size wire encoding (little-endian
// nanoseconds remaining, walk cap, work cap).
func (h Header) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(h.Remaining))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.MaxWalks))
	return binary.LittleEndian.AppendUint64(b, uint64(h.MaxWork))
}

// DecodeHeader consumes a Header from the front of b and returns the rest.
func DecodeHeader(b []byte) (Header, []byte, error) {
	if len(b) < HeaderSize {
		return Header{}, nil, fmt.Errorf("budget: header truncated: %d of %d bytes", len(b), HeaderSize)
	}
	h := Header{
		Remaining: time.Duration(binary.LittleEndian.Uint64(b)),
		MaxWalks:  int64(binary.LittleEndian.Uint64(b[8:])),
		MaxWork:   int64(binary.LittleEndian.Uint64(b[16:])),
	}
	return h, b[HeaderSize:], nil
}
