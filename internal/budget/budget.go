// Package budget implements the per-query cancellation and work-budget
// seam of the serving stack: a Meter shared by every worker of one query,
// plus a Checkpoint that amortizes the cost of consulting it inside hot
// kernel loops.
//
// ProbeSim's selling point is bounded per-query work on dynamic graphs;
// the Meter is what actually enforces the bound at serving time. A query
// carries (via context.Context and core.Budget) a wall-clock deadline, a
// cap on √c-walk trials, and a cap on probe edge traversals. Kernels do
// not poll the clock or the context channel on every iteration — that
// would cost more than the work being metered. Instead:
//
//   - Stopped() is a single atomic load, cheap enough for every walk
//     trial and every probe level.
//   - Poll() does the expensive part (time.Now + ctx.Err) and is called
//     every checkpoint interval, so detection latency is bounded by one
//     interval while steady-state overhead stays in the noise.
//   - ChargeWalks/ChargeWork count the query's actual work; crossing a
//     cap trips the meter exactly like a deadline does.
//
// A nil *Meter is valid everywhere and means "unbounded": every method
// is a nil-check, so un-budgeted queries (context.Background, zero
// Budget) pay one predictable branch per checkpoint and nothing else.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/qtrace"
)

// ErrBudget reports that a query exhausted an explicit work budget (walk
// or probe-work cap) rather than a deadline. Callers distinguish it from
// context.DeadlineExceeded / context.Canceled with errors.Is.
var ErrBudget = errors.New("query work budget exhausted")

// Error is the structured cancellation error a metered query returns: the
// cause (ErrBudget, context.DeadlineExceeded or context.Canceled) plus
// how much work the query had done when it tripped. Results returned
// alongside an *Error are partial: merged from whatever the workers had
// accumulated, not satisfying any accuracy guarantee.
type Error struct {
	Cause   error
	Walks   int64         // √c-walk trials completed
	Work    int64         // probe edge traversals charged
	Elapsed time.Duration // wall clock since the meter was armed

	// Shared reports that the trip came from a constraint baked into the
	// query configuration (a walk/work cap, or a deadline derived from
	// Budget.Timeout) rather than from the caller's own context. A shared
	// failure is deterministic for every identically-configured retry, so
	// single-flight waiters must inherit it instead of recomputing; a
	// caller-context failure (Shared=false) is one request's patience and
	// other callers may retry under their own contexts.
	Shared bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("query stopped after %d walks, %d probe work, %v: %v",
		e.Walks, e.Work, e.Elapsed.Round(time.Microsecond), e.Cause)
}

// Unwrap exposes the cause so errors.Is(err, context.DeadlineExceeded)
// and errors.Is(err, ErrBudget) work on the wrapped form.
func (e *Error) Unwrap() error { return e.Cause }

// Meter is one query's shared cancellation state. All methods are safe
// for concurrent use by the query's workers, and all are nil-safe: a nil
// Meter never stops anything.
type Meter struct {
	ctx      context.Context
	deadline time.Time
	hasDL    bool
	// dlFromBudget records that the effective deadline came from
	// Budget.Timeout (shared query configuration) rather than the
	// caller's context; see Error.Shared.
	dlFromBudget bool
	maxWalks     int64
	maxWork      int64
	start        time.Time

	// tr, when non-nil, is the query's sampled trace recorder. The meter
	// carries it so kernels get stage-timing hooks without learning a
	// second context object; unsampled queries leave it nil and every
	// hook below costs one branch.
	tr *qtrace.Trace

	walks   atomic.Int64
	work    atomic.Int64
	stopped atomic.Bool

	mu    sync.Mutex
	cause error
}

// New arms a meter for one query: the effective deadline is the earlier
// of ctx's deadline and now+timeout (timeout <= 0 means no extra bound),
// and maxWalks/maxWork cap trial count and probe edge traversals (<= 0
// means uncapped). When nothing can ever stop the query — no deadline,
// no cancelable context, no caps — New returns nil, which every kernel
// accepts as "unbounded" at one branch of cost per checkpoint.
func New(ctx context.Context, timeout time.Duration, maxWalks, maxWork int64) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	now := time.Now()
	dl, hasDL := ctx.Deadline()
	dlFromBudget := false
	if timeout > 0 {
		if t := now.Add(timeout); !hasDL || t.Before(dl) {
			dl, hasDL, dlFromBudget = t, true, true
		}
	}
	tr, _ := qtrace.FromContext(ctx)
	if !hasDL && ctx.Done() == nil && maxWalks <= 0 && maxWork <= 0 && tr == nil {
		return nil
	}
	if maxWalks < 0 {
		maxWalks = 0
	}
	if maxWork < 0 {
		maxWork = 0
	}
	return &Meter{
		ctx:          ctx,
		deadline:     dl,
		hasDL:        hasDL,
		dlFromBudget: dlFromBudget,
		maxWalks:     maxWalks,
		maxWork:      maxWork,
		start:        now,
		tr:           tr,
	}
}

// Trace returns the query's sampled trace recorder, nil when unsampled.
// Kernels and engines that already hold the meter reach the trace through
// it instead of threading a second object.
func (m *Meter) Trace() *qtrace.Trace {
	if m == nil {
		return nil
	}
	return m.tr
}

// StageStart opens a stage-timing window: it returns the current instant
// when the query is traced and the zero time otherwise, so the unsampled
// path never reads the clock. Pair with StageEnd.
func (m *Meter) StageStart() time.Time {
	if m == nil || m.tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageEnd charges the window since t0 to stage s and returns the new
// instant, so adjacent stages chain at one clock read per boundary:
//
//	clk := m.StageStart()
//	... walk ...
//	clk = m.StageEnd(qtrace.StageWalk, clk)
//	... probe ...
//	clk = m.StageEnd(qtrace.StageProbe, clk)
//
// A zero t0 (unsampled query) is a no-op.
func (m *Meter) StageEnd(s qtrace.Stage, t0 time.Time) time.Time {
	if t0.IsZero() {
		return t0
	}
	now := time.Now()
	m.tr.AddStage(s, now.Sub(t0))
	return now
}

// AddProbeLevels counts n expanded probe levels toward the trace's
// per-probe-level work attribution. One branch when untraced.
func (m *Meter) AddProbeLevels(n int64) {
	if m == nil || m.tr == nil {
		return
	}
	m.tr.AddProbeLevels(n)
}

// trip latches the first cause; later trips are ignored.
func (m *Meter) trip(cause error) {
	m.mu.Lock()
	if m.cause == nil {
		m.cause = cause
		m.stopped.Store(true)
	}
	m.mu.Unlock()
}

// Fail trips the meter with an external cause — the seam the distributed
// shard plane uses to stop a query's kernels when a worker RPC fails
// mid-flight: the transport error becomes the meter's cause, every worker
// drains at its next checkpoint, and the query returns its partial result
// wrapped in a budget.Error whose chain unwraps to the transport error.
// Nil-safe and idempotent (the first cause wins).
func (m *Meter) Fail(cause error) {
	if m != nil && cause != nil {
		m.trip(cause)
	}
}

// Stopped reports whether the meter has tripped. One atomic load; safe
// to call on every hot-loop iteration.
func (m *Meter) Stopped() bool {
	return m != nil && m.stopped.Load()
}

// Poll runs the expensive checks — deadline against the clock, context
// cancellation — trips the meter if either fired, and reports whether the
// query should stop. Call it once per checkpoint interval, Stopped() in
// between.
func (m *Meter) Poll() bool {
	if m == nil {
		return false
	}
	if m.stopped.Load() {
		return true
	}
	if m.hasDL && !time.Now().Before(m.deadline) {
		m.trip(context.DeadlineExceeded)
		return true
	}
	if err := m.ctx.Err(); err != nil {
		m.trip(err)
		return true
	}
	return false
}

// ChargeWalks records n completed √c-walk trials, tripping the meter when
// the walk cap is crossed.
func (m *Meter) ChargeWalks(n int64) {
	if m == nil {
		return
	}
	if w := m.walks.Add(n); m.maxWalks > 0 && w > m.maxWalks {
		m.trip(ErrBudget)
	}
}

// workPollInterval is the probe-work volume between clock/context polls
// driven from ChargeWork: every time the cumulative work counter crosses
// a 64Ki boundary, the charging worker runs a full Poll. This is what
// makes a deadline observable inside one long probe (whose levels charge
// as they expand) rather than only at walk-trial boundaries — at ~1ns
// per edge traversal a boundary passes every few tens of microseconds of
// work, while the time.Now amortizes to nothing.
const workPollInterval = 1 << 16

// ChargeWork records n units of probe work (edge traversals), tripping
// the meter when the work cap is crossed and polling the deadline and
// context whenever the cumulative work crosses a poll boundary.
func (m *Meter) ChargeWork(n int64) {
	if m == nil {
		return
	}
	w := m.work.Add(n)
	if m.maxWork > 0 && w > m.maxWork {
		m.trip(ErrBudget)
		return
	}
	if w/workPollInterval != (w-n)/workPollInterval {
		m.Poll()
	}
}

// Err returns nil while the meter has not tripped, and the structured
// *Error afterwards.
func (m *Meter) Err() error {
	if m == nil || !m.stopped.Load() {
		return nil
	}
	m.mu.Lock()
	cause := m.cause
	m.mu.Unlock()
	return &Error{
		Cause:   cause,
		Walks:   m.walks.Load(),
		Work:    m.work.Load(),
		Elapsed: time.Since(m.start),
		Shared:  errors.Is(cause, ErrBudget) || (m.dlFromBudget && errors.Is(cause, context.DeadlineExceeded)),
	}
}

// Walks returns the number of walk trials charged so far.
func (m *Meter) Walks() int64 {
	if m == nil {
		return 0
	}
	return m.walks.Load()
}

// Work returns the probe work charged so far.
func (m *Meter) Work() int64 {
	if m == nil {
		return 0
	}
	return m.work.Load()
}

// DefaultInterval is the checkpoint interval kernels use between full
// Poll()s: small enough that a 1ms deadline is honored within tens of
// microseconds of work on typical graphs, large enough that the clock
// read disappears into the per-trial cost.
const DefaultInterval = 16

// Checkpoint amortizes Poll for one worker: Stop() is an atomic load on
// most calls and a full Poll every interval-th call. Each worker owns its
// own Checkpoint (the struct is not safe for concurrent use); all
// checkpoints of a query share the meter, so any worker noticing expiry
// stops every other worker at its next Stop().
type Checkpoint struct {
	m        *Meter
	interval uint32
	n        uint32
}

// NewCheckpoint returns a checkpoint over m polling every interval calls
// (DefaultInterval when interval <= 0). The first Stop() call polls, so a
// query that arrives already expired stops before doing any work.
func NewCheckpoint(m *Meter, interval int) Checkpoint {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return Checkpoint{m: m, interval: uint32(interval)}
}

// Stop reports whether the query should stop. Safe to call on every
// iteration of a hot loop.
func (c *Checkpoint) Stop() bool {
	if c.m == nil {
		return false
	}
	if c.n == 0 {
		c.n = c.interval
		return c.m.Poll()
	}
	c.n--
	return c.m.Stopped()
}
