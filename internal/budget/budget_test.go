package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilMeterIsUnbounded(t *testing.T) {
	var m *Meter
	if m.Stopped() || m.Poll() || m.Err() != nil {
		t.Fatal("nil meter must never stop")
	}
	m.ChargeWalks(1 << 40)
	m.ChargeWork(1 << 40)
	if m.Stopped() {
		t.Fatal("nil meter tripped on charges")
	}
	cp := NewCheckpoint(nil, 4)
	for i := 0; i < 100; i++ {
		if cp.Stop() {
			t.Fatal("nil-meter checkpoint stopped")
		}
	}
}

func TestNewReturnsNilWhenUnconstrained(t *testing.T) {
	if m := New(context.Background(), 0, 0, 0); m != nil {
		t.Fatalf("unconstrained query got a meter: %+v", m)
	}
	if m := New(nil, 0, 0, 0); m != nil {
		t.Fatal("nil context, no constraints: want nil meter")
	}
}

func TestNewArmsForEachConstraint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cases := map[string]*Meter{
		"cancelable ctx": New(ctx, 0, 0, 0),
		"timeout":        New(context.Background(), time.Hour, 0, 0),
		"walk cap":       New(context.Background(), 0, 10, 0),
		"work cap":       New(context.Background(), 0, 0, 10),
	}
	for name, m := range cases {
		if m == nil {
			t.Errorf("%s: want non-nil meter", name)
		}
	}
}

func TestDeadlineTrips(t *testing.T) {
	m := New(context.Background(), time.Microsecond, 0, 0)
	time.Sleep(2 * time.Millisecond)
	if !m.Poll() {
		t.Fatal("expired deadline did not trip on Poll")
	}
	err := m.Err()
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("err %T is not *Error", err)
	}
}

func TestContextDeadlineWins(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	m := New(ctx, time.Hour, 0, 0)
	time.Sleep(2 * time.Millisecond)
	if !m.Poll() {
		t.Fatal("ctx deadline earlier than timeout did not trip")
	}
}

func TestCancellationTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := New(ctx, 0, 0, 0)
	if m.Poll() {
		t.Fatal("tripped before cancel")
	}
	cancel()
	if !m.Poll() {
		t.Fatal("canceled context did not trip")
	}
	if err := m.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestWalkAndWorkCaps(t *testing.T) {
	m := New(context.Background(), 0, 5, 0)
	m.ChargeWalks(5)
	if m.Stopped() {
		t.Fatal("tripped at exactly the walk cap")
	}
	m.ChargeWalks(1)
	if !m.Stopped() {
		t.Fatal("did not trip past the walk cap")
	}
	if err := m.Err(); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}

	m = New(context.Background(), 0, 0, 100)
	m.ChargeWork(60)
	m.ChargeWork(60)
	if !m.Stopped() {
		t.Fatal("did not trip past the work cap")
	}
	var be *Error
	if err := m.Err(); !errors.As(err, &be) || be.Work != 120 {
		t.Fatalf("err = %v, want *Error with Work=120", err)
	}
}

func TestFirstCauseLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(ctx, 0, 1, 0)
	m.ChargeWalks(2) // trips with ErrBudget
	cancel()
	m.Poll()
	if err := m.Err(); !errors.Is(err, ErrBudget) {
		t.Fatalf("later cancellation overwrote first cause: %v", err)
	}
}

func TestCheckpointPollsOnFirstCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead on arrival
	cp := NewCheckpoint(New(ctx, 0, 0, 0), 1000)
	if !cp.Stop() {
		t.Fatal("checkpoint must poll on its first call")
	}
}

func TestCheckpointAmortizes(t *testing.T) {
	// A meter whose only constraint is a walk cap never needs Poll to
	// trip; verify the checkpoint still notices via the shared flag.
	m := New(context.Background(), 0, 1, 0)
	cp := NewCheckpoint(m, 8)
	if cp.Stop() {
		t.Fatal("stopped before any charge")
	}
	m.ChargeWalks(2)
	if !cp.Stop() {
		t.Fatal("checkpoint missed the shared stopped flag")
	}
}

func TestConcurrentWorkersShareMeter(t *testing.T) {
	m := New(context.Background(), 0, 1000, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp := NewCheckpoint(m, 4)
			for !cp.Stop() {
				m.ChargeWalks(1)
			}
		}()
	}
	wg.Wait()
	if !m.Stopped() {
		t.Fatal("meter never tripped")
	}
	if w := m.Walks(); w < 1000 || w > 1000+8 {
		t.Fatalf("walks charged = %d, want within one per-worker overshoot of 1000", w)
	}
}
