package walk

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// cycleGraph returns a directed n-cycle, which has no dead ends so walk
// lengths follow the pure geometric law.
func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)); err != nil {
			panic(err)
		}
	}
	return g
}

func TestWalkStartsAtSource(t *testing.T) {
	g := cycleGraph(5)
	gen := NewGenerator(g, 0.6, xrand.New(1))
	for i := 0; i < 100; i++ {
		w := gen.Generate(3, 0, nil)
		if len(w) == 0 || w[0] != 3 {
			t.Fatalf("walk %v does not start at 3", w)
		}
	}
}

func TestWalkFollowsInEdges(t *testing.T) {
	g := cycleGraph(7)
	gen := NewGenerator(g, 0.8, xrand.New(2))
	for i := 0; i < 200; i++ {
		w := gen.Generate(0, 0, nil)
		for j := 1; j < len(w); j++ {
			if !g.HasEdge(w[j], w[j-1]) {
				t.Fatalf("walk step %d: %d is not an in-neighbor of %d", j, w[j], w[j-1])
			}
		}
	}
}

func TestWalkStopsAtDeadEnd(t *testing.T) {
	// 0 -> 1 -> 2: node 0 has no in-neighbors, so a walk from 2 has at
	// most 3 nodes.
	g := graph.New(3)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	gen := NewGenerator(g, 0.9, xrand.New(3))
	for i := 0; i < 500; i++ {
		w := gen.Generate(2, 0, nil)
		if len(w) > 3 {
			t.Fatalf("walk %v longer than the reverse path allows", w)
		}
	}
}

func TestWalkRespectsMaxNodes(t *testing.T) {
	g := cycleGraph(4)
	gen := NewGenerator(g, 0.95, xrand.New(4))
	for i := 0; i < 500; i++ {
		if w := gen.Generate(0, 3, nil); len(w) > 3 {
			t.Fatalf("truncation violated: %d nodes", len(w))
		}
	}
}

func TestWalkHardCap(t *testing.T) {
	g := cycleGraph(3)
	gen := NewGenerator(g, 0.99, xrand.New(5))
	for i := 0; i < 200; i++ {
		if w := gen.Generate(0, 0, nil); len(w) > HardCap {
			t.Fatalf("hard cap violated: %d nodes", len(w))
		}
	}
}

func TestBufferReuse(t *testing.T) {
	g := cycleGraph(5)
	gen := NewGenerator(g, 0.6, xrand.New(6))
	buf := make([]graph.NodeID, 0, 64)
	w1 := gen.Generate(0, 0, buf)
	w2 := gen.Generate(1, 0, w1)
	if w2[0] != 1 {
		t.Fatal("buffer reuse corrupted start node")
	}
}

// TestWalkLengthMoments verifies §3.3's analysis [E-A2]: walk node counts
// are geometric with success probability 1 − √c, so E[ℓ] = 1/(1−√c) and
// E[ℓ²] <= (1+√c)/(1−√c)².
func TestWalkLengthMoments(t *testing.T) {
	const c, trials = 0.6, 200000
	g := cycleGraph(11)
	gen := NewGenerator(g, c, xrand.New(7))
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		l := float64(len(gen.Generate(0, 0, nil)))
		sum += l
		sumSq += l * l
	}
	meanLen := sum / trials
	meanSq := sumSq / trials
	if want := ExpectedLen(c); math.Abs(meanLen-want) > 0.03 {
		t.Errorf("E[ℓ] = %.4f, want %.4f", meanLen, want)
	}
	if bound := ExpectedLenSq(c); meanSq > bound*1.02 {
		t.Errorf("E[ℓ²] = %.4f exceeds bound %.4f", meanSq, bound)
	}
}

// Per-step termination probability must be 1 − √c: among walks that reach a
// node with in-neighbors, the fraction that stop there is 1 − √c.
func TestTerminationRate(t *testing.T) {
	const c, trials = 0.6, 100000
	g := cycleGraph(9)
	gen := NewGenerator(g, c, xrand.New(8))
	stopAtFirst := 0
	for i := 0; i < trials; i++ {
		if len(gen.Generate(0, 0, nil)) == 1 {
			stopAtFirst++
		}
	}
	got := float64(stopAtFirst) / trials
	want := 1 - math.Sqrt(c)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("P[stop at start] = %.4f, want %.4f", got, want)
	}
}

// In-neighbor selection must be uniform.
func TestUniformInNeighborChoice(t *testing.T) {
	// Node 0 has 3 in-neighbors 1, 2, 3.
	g := graph.New(4)
	for _, u := range []graph.NodeID{1, 2, 3} {
		if err := g.AddEdge(u, 0); err != nil {
			t.Fatal(err)
		}
	}
	gen := NewGenerator(g, 0.6, xrand.New(9))
	counts := map[graph.NodeID]int{}
	const trials = 90000
	taken := 0
	for i := 0; i < trials; i++ {
		w := gen.Generate(0, 2, nil)
		if len(w) == 2 {
			counts[w[1]]++
			taken++
		}
	}
	for v, n := range counts {
		got := float64(n) / float64(taken)
		if math.Abs(got-1.0/3) > 0.01 {
			t.Errorf("in-neighbor %d frequency %.4f, want 1/3", v, got)
		}
	}
}

func TestTruncateLen(t *testing.T) {
	// Paper's running example: εt = 0.05, √c = 0.5 → 4 nodes.
	if got := TruncateLen(0.05, 0.5); got != 4 {
		t.Fatalf("TruncateLen(0.05, 0.5) = %d, want 4", got)
	}
	if got := TruncateLen(0, 0.5); got != HardCap {
		t.Fatalf("TruncateLen(0, ...) = %d, want HardCap", got)
	}
	if got := TruncateLen(0.9, 0.5); got < 2 {
		t.Fatalf("TruncateLen must allow at least 2 nodes, got %d", got)
	}
}

func TestMeetStep(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want int
	}{
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{4, 2, 5}, 2},
		{[]graph.NodeID{1, 2}, []graph.NodeID{1, 9}, 1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{3, 4}, 0},
		{[]graph.NodeID{1}, []graph.NodeID{}, 0},
		{[]graph.NodeID{1, 2, 3, 7}, []graph.NodeID{2, 3, 1, 7}, 4},
	}
	for i, c := range cases {
		if got := MeetStep(c.a, c.b); got != c.want {
			t.Errorf("case %d: MeetStep = %d, want %d", i, got, c.want)
		}
	}
}

func TestNewGeneratorRejectsBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("c = 1 accepted")
		}
	}()
	NewGenerator(graph.New(1), 1, xrand.New(1))
}
