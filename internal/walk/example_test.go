package walk_test

import (
	"fmt"

	"probesim/internal/gen"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// √c-walks are reverse random walks that survive each step with
// probability √c: on a cycle (no dead ends) their length is geometric
// with mean 1/(1−√c) ≈ 4.4 at c = 0.6.
func Example() {
	g := gen.Cycle(10)
	gen := walk.NewGenerator(g, 0.6, xrand.New(7))

	var total int
	const samples = 20000
	var buf []int32
	for i := 0; i < samples; i++ {
		buf = gen.Generate(0, 0, buf)
		total += len(buf)
	}
	mean := float64(total) / samples
	fmt.Printf("expected length: %.2f\n", walk.ExpectedLen(0.6))
	fmt.Printf("sample mean within 0.1: %v\n", mean > walk.ExpectedLen(0.6)-0.1 && mean < walk.ExpectedLen(0.6)+0.1)
	// Output:
	// expected length: 4.44
	// sample mean within 0.1: true
}

// MeetStep implements Eq. 3's meeting test: two walks meet when they visit
// the same node at the same step, which is what SimRank measures.
func ExampleMeetStep() {
	a := []int32{1, 5, 9}
	b := []int32{2, 5, 7}
	c := []int32{2, 6, 7}
	fmt.Println(walk.MeetStep(a, b)) // both at node 5 at step 2
	fmt.Println(walk.MeetStep(a, c)) // never aligned
	// Output:
	// 2
	// 0
}
