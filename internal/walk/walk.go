// Package walk implements √c-walks (Definition 3 of the paper): reverse
// random walks that follow a uniformly chosen incoming edge at each step and
// terminate with probability 1 − √c per step. By Eq. 3, the SimRank
// similarity s(u, v) equals the probability that independent √c-walks from
// u and v meet (visit the same node at the same step), which is the
// foundation of ProbeSim, the Monte Carlo baseline, and TSF.
package walk

import (
	"math"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// HardCap bounds walk length when no truncation is requested. A √c-walk
// of 96 steps survives with probability (√c)^96 < 5·10⁻¹¹ even at c = 0.8,
// so the cap is statistically invisible while keeping buffers bounded.
const HardCap = 96

// Generator produces √c-walks over a fixed graph view.
type Generator struct {
	adj   graph.Adj
	sqrtC float64
	rng   *xrand.RNG
	meter *budget.Meter
}

// NewGenerator returns a walk generator with decay factor c (the SimRank
// decay; the per-step survival probability is √c) drawing randomness from
// rng. It accepts either a mutable *graph.Graph or an immutable
// *graph.Snapshot; the adjacency storage is resolved once so walk steps
// pay no interface dispatch. If g is a *graph.Graph it must not be
// mutated while the generator is in use.
func NewGenerator(g graph.View, c float64, rng *xrand.RNG) *Generator {
	if c <= 0 || c >= 1 {
		panic("walk: decay factor must be in (0, 1)")
	}
	return &Generator{adj: graph.ResolveAdj(g), sqrtC: math.Sqrt(c), rng: rng}
}

// SqrtC returns the per-step survival probability √c.
func (gen *Generator) SqrtC() float64 { return gen.sqrtC }

// SetMeter attaches the owning query's budget meter: once it trips,
// Generate returns the trivial one-node walk immediately instead of
// stepping, so a canceled query stops producing work at the next walk
// boundary. A nil meter (the default) means unbounded.
func (gen *Generator) SetMeter(m *budget.Meter) { gen.meter = m }

// Generate appends a √c-walk starting at u to buf and returns it. The walk
// includes u as its first node. maxNodes caps the number of nodes in the
// walk (pruning rule 1); pass 0 for the statistical HardCap. A walk also
// ends when it reaches a node with no in-neighbors, since a reverse step
// is impossible there (an empty in-neighbor sum in Eq. 1).
func (gen *Generator) Generate(u graph.NodeID, maxNodes int, buf []graph.NodeID) []graph.NodeID {
	if maxNodes <= 0 || maxNodes > HardCap {
		maxNodes = HardCap
	}
	buf = append(buf[:0], u)
	if gen.meter.Stopped() {
		return buf
	}
	cur := u
	for len(buf) < maxNodes {
		if gen.rng.Float64() >= gen.sqrtC {
			break // terminated with probability 1 − √c
		}
		in := gen.adj.In(cur)
		if len(in) == 0 {
			break
		}
		cur = in[gen.rng.Intn(len(in))]
		buf = append(buf, cur)
	}
	return buf
}

// TruncateLen returns the maximum number of walk nodes under pruning rule 1
// with termination parameter epsT: ℓt = ⌊log(εt)/log(√c)⌋, matching the
// paper's running example (εt = 0.05, √c = 0.5 → walks keep 4 nodes).
// The result is at least 2 so that a walk can contribute at all.
func TruncateLen(epsT, sqrtC float64) int {
	if epsT <= 0 || epsT >= 1 {
		return HardCap
	}
	l := int(math.Floor(math.Log(epsT) / math.Log(sqrtC)))
	if l < 2 {
		l = 2
	}
	if l > HardCap {
		l = HardCap
	}
	return l
}

// MeetStep returns the first step index i (1-based over walk positions,
// counting the start nodes as position 1) at which the two walks visit the
// same node, or 0 when they never meet. Used by the Monte Carlo estimator:
// two √c-walks contribute to s(u, v) exactly when MeetStep > 0.
func MeetStep(a, b []graph.NodeID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			return i + 1
		}
	}
	return 0
}

// ExpectedLen returns E[ℓ], the expected node count of a √c-walk on a graph
// with no dead ends: 1/(1 − √c).
func ExpectedLen(c float64) float64 { return 1 / (1 - math.Sqrt(c)) }

// ExpectedLenSq returns the bound on E[ℓ²] used in §3.3's complexity
// analysis: (1 + √c)/(1 − √c)².
func ExpectedLenSq(c float64) float64 {
	s := math.Sqrt(c)
	return (1 + s) / ((1 - s) * (1 - s))
}
