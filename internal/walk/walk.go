// Package walk implements √c-walks (Definition 3 of the paper): reverse
// random walks that follow a uniformly chosen incoming edge at each step and
// terminate with probability 1 − √c per step. By Eq. 3, the SimRank
// similarity s(u, v) equals the probability that independent √c-walks from
// u and v meet (visit the same node at the same step), which is the
// foundation of ProbeSim, the Monte Carlo baseline, and TSF.
package walk

import (
	"math"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
	"probesim/internal/xrand"
)

// HardCap bounds walk length when no truncation is requested. A √c-walk
// of 96 steps survives with probability (√c)^96 < 5·10⁻¹¹ even at c = 0.8,
// so the cap is statistically invisible while keeping buffers bounded.
const HardCap = 96

// SegmentedView is a graph view that samples walk segments itself instead
// of exposing per-node adjacency to the walk loop. The router's
// distributed view implements it: each segment runs on the shard engine
// owning the walk's current node (locally or over RPC), consuming exactly
// the same SplitMix64 stream as an in-process walk, so results stay
// bit-identical across topologies.
type SegmentedView interface {
	// WalkSegment continues a √c-walk whose current (last) node is cur,
	// appending at most room further nodes to buf. state is the walk RNG's
	// SplitMix64 state before the segment; the returned state is the
	// stream position after it. done reports that the walk ended
	// (termination draw, dead end, budget stop, or transport failure);
	// !done means the walk crossed to a node owned by another shard engine
	// and the caller should request the next segment from the new current
	// node (the last element of the returned buf).
	WalkSegment(cur graph.NodeID, state uint64, room int, sqrtC float64, buf []graph.NodeID) (out []graph.NodeID, newState uint64, done bool)
}

// BatchWalk is one walk of a batched generation. Buf holds the walk's
// nodes so far (the start node first), State is the walk's SplitMix64
// position after the last appended node, and Done reports that the walk
// ended (termination draw, dead end, length cap, or budget stop).
type BatchWalk struct {
	Buf   []graph.NodeID
	State uint64
	Done  bool
}

// BatchSegmentedView is a SegmentedView that can advance many walks per
// exchange. The router's distributed view implements it: walks whose
// current shard block is already cached step locally, and the remainder
// are delegated in one RPC per owning worker group instead of one per
// walk. Each walk draws only from its own State, so the batched stepping
// is bit-identical to per-walk WalkSegment calls by construction.
type BatchSegmentedView interface {
	SegmentedView
	// WalkSegmentBatch advances every walk with Done == false by at least
	// one segment, appending to its Buf (never past maxNodes nodes) and
	// updating its State. A walk left !Done crossed into a shard the view
	// chose not to step this round; the caller loops until all walks are
	// done. An error latches a transport/budget failure: the view marks
	// affected walks done and the caller stops looping.
	WalkSegmentBatch(walks []BatchWalk, maxNodes int, sqrtC float64) error
}

// Generator produces √c-walks over a fixed graph view.
type Generator struct {
	adj   graph.Adj
	seg   SegmentedView      // non-nil: delegate stepping to the view
	batch BatchSegmentedView // non-nil: the view can step many walks at once
	sqrtC float64
	rng   *xrand.RNG
	meter *budget.Meter
}

// NewGenerator returns a walk generator with decay factor c (the SimRank
// decay; the per-step survival probability is √c) drawing randomness from
// rng. It accepts either a mutable *graph.Graph or an immutable
// *graph.Snapshot; the adjacency storage is resolved once so walk steps
// pay no interface dispatch. If g is a *graph.Graph it must not be
// mutated while the generator is in use.
//
// A SegmentedView steps walks itself, so its adjacency is deliberately
// NOT resolved here: resolving a distributed view materializes every
// uncached shard block, which the walk phase must not force.
func NewGenerator(g graph.View, c float64, rng *xrand.RNG) *Generator {
	if c <= 0 || c >= 1 {
		panic("walk: decay factor must be in (0, 1)")
	}
	gen := &Generator{sqrtC: math.Sqrt(c), rng: rng}
	if sv, ok := g.(SegmentedView); ok {
		gen.seg = sv
		if bv, ok := g.(BatchSegmentedView); ok {
			gen.batch = bv
		}
	} else {
		gen.adj = graph.ResolveAdj(g)
	}
	return gen
}

// SqrtC returns the per-step survival probability √c.
func (gen *Generator) SqrtC() float64 { return gen.sqrtC }

// SetMeter attaches the owning query's budget meter: once it trips,
// Generate returns the trivial one-node walk immediately instead of
// stepping, so a canceled query stops producing work at the next walk
// boundary. A nil meter (the default) means unbounded.
func (gen *Generator) SetMeter(m *budget.Meter) { gen.meter = m }

// Generate appends a √c-walk starting at u to buf and returns it. The walk
// includes u as its first node. maxNodes caps the number of nodes in the
// walk (pruning rule 1); pass 0 for the statistical HardCap. A walk also
// ends when it reaches a node with no in-neighbors, since a reverse step
// is impossible there (an empty in-neighbor sum in Eq. 1).
func (gen *Generator) Generate(u graph.NodeID, maxNodes int, buf []graph.NodeID) []graph.NodeID {
	if maxNodes <= 0 || maxNodes > HardCap {
		maxNodes = HardCap
	}
	buf = append(buf[:0], u)
	if gen.meter.Stopped() {
		return buf
	}
	// Stage timing: a traced query attributes the whole walk (including
	// any shard RPC round trips of a segmented view) to the walk stage;
	// untraced queries get a zero clk and StageEnd is a no-op.
	clk := gen.meter.StageStart()
	if gen.seg != nil {
		// Segmented view: the view steps the walk (shard-locally or over
		// RPC), round-tripping the RNG state so the stream is the one an
		// in-process walk would consume.
		state := gen.rng.State()
		for len(buf) < maxNodes {
			var done bool
			buf, state, done = gen.seg.WalkSegment(buf[len(buf)-1], state, maxNodes-len(buf), gen.sqrtC, buf)
			if done {
				break
			}
		}
		gen.rng.SetState(state)
		gen.meter.StageEnd(qtrace.StageWalk, clk)
		return buf
	}
	buf, _ = Segment(&gen.adj, u, maxNodes-1, gen.sqrtC, gen.rng, nil, nil, buf)
	gen.meter.StageEnd(qtrace.StageWalk, clk)
	return buf
}

// GenerateMany produces one √c-walk from u per entry of states, where
// states[i] is walk i's initial SplitMix64 state. The walks slice is
// reused (its node buffers are recycled) and returned resized to
// len(states). Each walk draws exclusively from its own stream, so the
// result is bit-identical to len(states) sequential Generate calls with
// those streams — but over a BatchSegmentedView all walks advance per
// exchange, collapsing per-walk RPC round trips into per-group ones.
func (gen *Generator) GenerateMany(u graph.NodeID, states []uint64, maxNodes int, walks []BatchWalk) []BatchWalk {
	if maxNodes <= 0 || maxNodes > HardCap {
		maxNodes = HardCap
	}
	if cap(walks) < len(states) {
		walks = append(walks[:cap(walks)], make([]BatchWalk, len(states)-cap(walks))...)
	}
	walks = walks[:len(states)]
	for i, st := range states {
		walks[i].Buf = append(walks[i].Buf[:0], u)
		walks[i].State = st
		walks[i].Done = false
	}
	if gen.meter.Stopped() {
		for i := range walks {
			walks[i].Done = true
		}
		return walks
	}
	clk := gen.meter.StageStart()
	switch {
	case gen.batch != nil:
		for {
			live := 0
			for i := range walks {
				if !walks[i].Done {
					live++
				}
			}
			if live == 0 {
				break
			}
			if err := gen.batch.WalkSegmentBatch(walks, maxNodes, gen.sqrtC); err != nil {
				// The view latched the failure (and tripped the meter);
				// surviving prefixes stand as the walks' partial results.
				for i := range walks {
					walks[i].Done = true
				}
				break
			}
			for i := range walks {
				if !walks[i].Done && len(walks[i].Buf) >= maxNodes {
					walks[i].Done = true
				}
			}
		}
	case gen.seg != nil:
		for i := range walks {
			w := &walks[i]
			for !w.Done && len(w.Buf) < maxNodes {
				w.Buf, w.State, w.Done = gen.seg.WalkSegment(w.Buf[len(w.Buf)-1], w.State, maxNodes-len(w.Buf), gen.sqrtC, w.Buf)
			}
			w.Done = true
		}
	default:
		var rng xrand.RNG
		for i := range walks {
			w := &walks[i]
			rng.SetState(w.State)
			w.Buf, _ = Segment(&gen.adj, u, maxNodes-1, gen.sqrtC, &rng, nil, nil, w.Buf)
			w.State = rng.State()
			w.Done = true
		}
	}
	gen.meter.StageEnd(qtrace.StageWalk, clk)
	return walks
}

// Segment advances a √c-walk from cur, appending at most room further
// nodes to buf. It is the single step loop behind every walk in this
// repository — Generate runs it with no ownership predicate, and the shard
// RPC worker runs it with owns limiting the segment to the shards it
// serves — so a walk stitched from segments consumes exactly the same RNG
// stream, and visits exactly the same nodes, as an uninterrupted one.
//
// The walk ends (ended = true) on the termination draw, at a node with no
// in-neighbors, when room is exhausted, or when stop reports the owning
// query's budget expired; ended = false means the walk stepped to a node
// for which owns returned false, and the caller must continue it there.
// stop, when non-nil, is polled once per step — walk segments are at most
// HardCap steps, so per-step polling through a budget.Checkpoint is what
// lets a propagated deadline stop a remote walk loop mid-segment.
func Segment(adj *graph.Adj, cur graph.NodeID, room int, sqrtC float64, rng *xrand.RNG, owns func(graph.NodeID) bool, stop func() bool, buf []graph.NodeID) (out []graph.NodeID, ended bool) {
	for ; room > 0; room-- {
		if owns != nil && !owns(cur) {
			return buf, false
		}
		if stop != nil && stop() {
			return buf, true
		}
		if rng.Float64() >= sqrtC {
			return buf, true // terminated with probability 1 − √c
		}
		in := adj.In(cur)
		if len(in) == 0 {
			return buf, true
		}
		cur = in[rng.Intn(len(in))]
		buf = append(buf, cur)
	}
	return buf, true
}

// TruncateLen returns the maximum number of walk nodes under pruning rule 1
// with termination parameter epsT: ℓt = ⌊log(εt)/log(√c)⌋, matching the
// paper's running example (εt = 0.05, √c = 0.5 → walks keep 4 nodes).
// The result is at least 2 so that a walk can contribute at all.
func TruncateLen(epsT, sqrtC float64) int {
	if epsT <= 0 || epsT >= 1 {
		return HardCap
	}
	l := int(math.Floor(math.Log(epsT) / math.Log(sqrtC)))
	if l < 2 {
		l = 2
	}
	if l > HardCap {
		l = HardCap
	}
	return l
}

// MeetStep returns the first step index i (1-based over walk positions,
// counting the start nodes as position 1) at which the two walks visit the
// same node, or 0 when they never meet. Used by the Monte Carlo estimator:
// two √c-walks contribute to s(u, v) exactly when MeetStep > 0.
func MeetStep(a, b []graph.NodeID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			return i + 1
		}
	}
	return 0
}

// ExpectedLen returns E[ℓ], the expected node count of a √c-walk on a graph
// with no dead ends: 1/(1 − √c).
func ExpectedLen(c float64) float64 { return 1 / (1 - math.Sqrt(c)) }

// ExpectedLenSq returns the bound on E[ℓ²] used in §3.3's complexity
// analysis: (1 + √c)/(1 − √c)².
func ExpectedLenSq(c float64) float64 {
	s := math.Sqrt(c)
	return (1 + s) / ((1 - s) * (1 - s))
}
