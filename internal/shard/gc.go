package shard

// Snapshot-generation GC visibility. Queries pin the generation they
// grabbed for as long as they run, so superseded snapshots can stay live
// long after publication replaced them — and before this file, operators
// had no way to see how many were live or how much memory they held. The
// store tracks every retired generation with a weak pointer: the tracking
// itself can never extend a generation's lifetime (the whole point is to
// observe the collector, not fight it), and a scrape walks the list,
// counts the pointers that still resolve, and sums the bytes each live
// retiree uniquely pins — the shard CSRs the current snapshot does NOT
// share with it, plus its own dense span arrays. The numbers are
// approximate by construction (two retirees sharing a block double-count
// it, and a collected-but-unswept pointer lags one GC cycle) but they move
// with reality, which is what an operator watching a leak needs.

import (
	"sync"
	"weak"
)

// gcTracker is the store's retired-generation ledger.
type gcTracker struct {
	mu sync.Mutex
	// retired holds one weak pointer per superseded generation, pruned of
	// collected entries on every track and scrape.
	retired []weak.Pointer[StoreSnapshot]
	// total counts generations ever retired (monotonic).
	total int64
}

// track records that prev was superseded. Collected entries are pruned in
// the same pass, so the slice stays proportional to the LIVE retirees.
func (t *gcTracker) track(prev *StoreSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	live := t.retired[:0]
	for _, w := range t.retired {
		if w.Value() != nil {
			live = append(live, w)
		}
	}
	t.retired = append(live, weak.Make(prev))
}

// GCStats reports the retired-generation picture at one scrape.
type GCStats struct {
	// RetiredTotal counts generations ever superseded by a publication.
	RetiredTotal int64
	// RetiredLive counts superseded generations still reachable (pinned
	// by in-flight queries, or not yet collected).
	RetiredLive int
	// RetiredBytes approximates the memory the live retirees uniquely
	// pin: shard CSRs the current snapshot does not share with them, plus
	// their dense span arrays.
	RetiredBytes int64
	// CurrentBytes is the resident size of the current snapshot.
	CurrentBytes int64
}

// GC scans the retired-generation ledger. It never blocks publication or
// queries (the ledger has its own mutex; snapshots are immutable).
func (st *Store) GC() GCStats {
	cur := st.cur.Load()
	s := GCStats{}
	if cur != nil {
		s.CurrentBytes = cur.MemoryBytes()
	}
	st.gc.mu.Lock()
	defer st.gc.mu.Unlock()
	s.RetiredTotal = st.gc.total
	live := st.gc.retired[:0]
	for _, w := range st.gc.retired {
		snap := w.Value()
		if snap == nil {
			continue
		}
		live = append(live, w)
		s.RetiredLive++
		s.RetiredBytes += snap.retainedBytes(cur)
	}
	st.gc.retired = live
	return s
}

// retainedBytes approximates the bytes s pins that cur does not share
// with it: every shard CSR encoded at a version cur has since re-encoded
// (or that cur no longer has at all), plus s's span arrays — those are
// built per generation and never shared.
func (s *StoreSnapshot) retainedBytes(cur *StoreSnapshot) int64 {
	var b int64
	if sp := s.spans.Load(); sp != nil {
		b += int64(len(sp.in)+len(sp.out)) * 8
	}
	for p := range s.csr {
		if cur != nil && p < len(cur.csr) && cur.versions[p] == s.versions[p] {
			continue // shared by reference with the current snapshot
		}
		sh := &s.csr[p]
		b += int64(len(sh.InOff)+len(sh.OutOff)) * 4
		b += int64(len(sh.InDst)+len(sh.OutDst)) * 4
	}
	return b
}
