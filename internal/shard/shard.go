// Package shard partitions the dynamic graph by source node into P
// shards, each owning its own mutable adjacency, immutable CSR snapshot,
// and version counter. It is the scaling layer between the monolithic
// snapshot path of PR 1 and multi-process serving:
//
//   - An edge batch republishes in O(batch + touched shards) instead of
//     O(n+m): only the shards whose node ranges the batch touched are
//     re-encoded to CSR, on a bounded worker pool; untouched shards are
//     shared by pointer with the previous snapshot.
//   - Queries run unchanged and bit-identically: the published composite
//     snapshot implements graph.View and graph.AdjProvider, so every
//     kernel (walk generation, PROBE expansion, components, joins)
//     resolves the same devirtualized graph.Adj fast path it uses on a
//     monolithic snapshot, and neighbor order is preserved exactly.
//   - The probe/walk kernels are embarrassingly parallel over sources, so
//     queries fan out across shards for free through the executor's
//     worker pool; no kernel knows shards exist.
//
// Partitioning is by contiguous node range with a power-of-two stride:
// node v lives in shard v>>shift at local index v&(stride-1). The stride
// is chosen so the shard count does not exceed the requested P, and the
// shift/mask arithmetic keeps the per-access cost within noise of the
// monolithic CSR layout.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"probesim/internal/graph"
)

// Partition maps nodes to shards: contiguous ranges of 1<<shift nodes.
type Partition struct {
	shift uint32
}

// NewPartition chooses the smallest power-of-two stride that covers n
// nodes with at most p shards. p < 1 is treated as 1.
//
// The stride is FIXED for the life of a Store: nodes added later keep
// the stride and extend the shard set, so a store grown far beyond its
// construction-time size has proportionally more shards than requested.
// An empty store (n == 0) therefore gets a floor stride rather than
// stride 1, so it does not degenerate into one shard per future node.
func NewPartition(n, p int) Partition {
	if p < 1 {
		p = 1
	}
	perShard := (n + p - 1) / p
	if n == 0 {
		perShard = 64
	}
	var shift uint32
	for 1<<shift < perShard {
		shift++
	}
	return Partition{shift: shift}
}

// Stride returns the number of node ids per shard.
func (pt Partition) Stride() int { return 1 << pt.shift }

// Shift returns log2(stride).
func (pt Partition) Shift() uint32 { return pt.shift }

// ShardOf returns the shard owning node v.
func (pt Partition) ShardOf(v graph.NodeID) int { return int(uint32(v) >> pt.shift) }

// LocalOf returns v's index within its shard.
func (pt Partition) LocalOf(v graph.NodeID) int { return int(uint32(v) & (uint32(1)<<pt.shift - 1)) }

// Count returns the number of shards needed for n nodes.
func (pt Partition) Count(n int) int {
	stride := 1 << pt.shift
	return (n + stride - 1) / stride
}

// shardMut is one shard's mutable side: slice-of-slice adjacency for the
// shard's node range (local index), plus the store version of its last
// mutation — the dirtiness signal Publish compares against the published
// snapshot to decide which shards to rebuild.
type shardMut struct {
	in, out [][]graph.NodeID // local index; destination ids are global
	version uint64
}

// Store is the sharded counterpart of the monolithic *graph.Graph +
// core.Executor snapshot pair: the mutable write side of the graph,
// partitioned, plus an atomically published composite snapshot.
//
// Concurrency contract: mutations (AddEdge, RemoveEdge, AddNode) and
// Publish serialize on an internal mutex; any number of goroutines may
// read the published snapshot (Current / PublishedView) lock-free at any
// time, including during mutation and publication. Reading the Store
// itself through graph.View (InNeighbors etc.) follows the *graph.Graph
// contract: safe only while no mutator is active.
type Store struct {
	part    Partition
	workers int

	// ownIndex/ownGroup scope the store to the shards p with
	// p%ownGroup == ownIndex (ownGroup <= 1 means the store is full).
	// A scoped store is the memory side of a shard-local worker: it
	// keeps mutable adjacency and publishes CSR blocks ONLY for owned
	// shards, while the version counters (store version, per-shard
	// versions, edge/node counts, batch watermark) advance exactly as a
	// full store's would under the same operation sequence — that
	// lockstep is what lets a fleet of scoped workers pass the routers'
	// staleness checks. Non-owned shards publish as absent (zero-length
	// CSR arrays); serving them is rejected by the engine layer.
	//
	// Scoping weakens ONE check: a RemoveEdge whose endpoints both live
	// in non-owned shards cannot be validated here and is accepted
	// blindly. The workers owning those shards still validate it, so
	// owned data never corrupts — but a semantically invalid batch is
	// rejected only by the owners of the shards it touches. Keep
	// scoped fleets behind a writer that submits valid batches.
	ownIndex int
	ownGroup int

	mu      sync.Mutex
	n       int
	m       int64
	version uint64
	// lastBatch is the id of the last edge batch DECIDED by ApplyBatch
	// (applied or rejected) — the durable write plane's apply-once
	// watermark. Batch ids are assigned by the write-ahead log (or the
	// router) and increase monotonically; 0 means "no batches yet".
	lastBatch uint64
	shards    []*shardMut

	cur atomic.Pointer[StoreSnapshot]

	// eagerSpans, when set, makes every publication kick off a background
	// materialization of the new snapshot's dense span arrays (see
	// EnableEagerSpans).
	eagerSpans atomic.Bool

	// gc tracks superseded generations with weak pointers for the
	// retired-generation gauges (see gc.go).
	gc gcTracker

	// onApplied callbacks fire after every SUCCESSFULLY applied batch
	// (never for rejected/rolled-back batches or apply-once retry
	// no-ops), under st.mu and in subscription order. See
	// SubscribeApplied for the callback contract.
	onApplied []func(id uint64, ops []EdgeOp)

	// Publication counters (atomics so /stats can read them lock-free).
	publications     atomic.Int64
	shardsRebuilt    atomic.Int64
	shardsReused     atomic.Int64
	noopPublishes    atomic.Int64
	abortedPublishes atomic.Int64
	edgesReEncoded   atomic.Int64
}

// NewStore partitions g into at most shards shards and publishes an
// initial snapshot. The adjacency is deep-copied: the store and the
// source graph are independent afterwards. workers bounds the rebuild
// pool; <= 0 means one goroutine per dirty shard up to GOMAXPROCS.
func NewStore(g *graph.Graph, shards, workers int) *Store {
	return newStore(g, shards, workers, 0, 0)
}

// NewStoreScoped is NewStore restricted to the shards p with
// p%group == index: the shard-local worker's constructor. Adjacency for
// non-owned shards is neither copied nor published (per-worker memory is
// ~owned/total of the graph), while every counter the serving stack
// compares across workers advances as the full store's would. See the
// scoping notes on Store for the write-plane contract.
func NewStoreScoped(g *graph.Graph, shards, workers, index, group int) *Store {
	if group < 1 || index < 0 || index >= group {
		panic(fmt.Sprintf("shard: scoped store needs 0 <= index < group, got %d/%d", index, group))
	}
	return newStore(g, shards, workers, index, group)
}

func newStore(g *graph.Graph, shards, workers, index, group int) *Store {
	n := g.NumNodes()
	st := &Store{
		part:     NewPartition(n, shards),
		workers:  workers,
		ownIndex: index,
		ownGroup: group,
		n:        n,
		m:        g.NumEdges(),
		version:  g.Version(),
	}
	count := st.part.Count(n)
	st.shards = make([]*shardMut, count)
	stride := st.part.Stride()
	for p := 0; p < count; p++ {
		sm := &shardMut{version: st.version}
		if st.ownsShard(p) {
			lo := p * stride
			hi := lo + stride
			if hi > n {
				hi = n
			}
			sm.in = make([][]graph.NodeID, hi-lo)
			sm.out = make([][]graph.NodeID, hi-lo)
			for v := lo; v < hi; v++ {
				if l := g.InNeighbors(graph.NodeID(v)); len(l) > 0 {
					sm.in[v-lo] = append([]graph.NodeID(nil), l...)
				}
				if l := g.OutNeighbors(graph.NodeID(v)); len(l) > 0 {
					sm.out[v-lo] = append([]graph.NodeID(nil), l...)
				}
			}
		}
		st.shards[p] = sm
	}
	st.Publish()
	return st
}

// ownsShard reports whether this store keeps shard p's data. A full
// store owns everything.
func (st *Store) ownsShard(p int) bool {
	return st.ownGroup <= 1 || p%st.ownGroup == st.ownIndex
}

// Scope returns the store's (index, group) shard scope; group <= 1 means
// the store is full. Engines serving a scoped store must be configured
// with the same scope.
func (st *Store) Scope() (index, group int) { return st.ownIndex, st.ownGroup }

// NewEmpty returns a store with n isolated nodes partitioned into at most
// shards shards, with an initial (empty-adjacency) snapshot published.
func NewEmpty(n, shards, workers int) *Store {
	if n < 0 {
		panic("shard: negative node count")
	}
	return NewStore(graph.New(n), shards, workers)
}

// Restore rebuilds a Store from checkpointed per-shard CSR blocks — the
// decode side of the durable write plane (internal/persist). The given
// blocks become the published snapshot directly (no re-encode), and the
// mutable adjacency is deep-copied out of them so later mutations never
// write into the snapshot's storage. version and lastBatch restore the
// mutation counter and the apply-once watermark the checkpoint captured;
// replaying the write-ahead log tail through ApplyBatch then brings the
// store to the crash point. workers bounds the rebuild pool as in
// NewStore.
func Restore(n int, m int64, version, lastBatch uint64, shift uint32, csr []graph.CSRShard, shardVersions []uint64, workers int) (*Store, error) {
	return restore(n, m, version, lastBatch, shift, csr, shardVersions, workers, 0, 0)
}

// RestoreScoped is Restore for a shard-local worker: only the shards p
// with p%group == index carry CSR data (the rest must be absent —
// zero-length arrays, as a stride-scoped checkpoint read produces), and
// only those are validated and deep-copied into the mutable side.
func RestoreScoped(n int, m int64, version, lastBatch uint64, shift uint32, csr []graph.CSRShard, shardVersions []uint64, workers, index, group int) (*Store, error) {
	if group < 1 || index < 0 || index >= group {
		return nil, fmt.Errorf("shard: scoped restore needs 0 <= index < group, got %d/%d", index, group)
	}
	return restore(n, m, version, lastBatch, shift, csr, shardVersions, workers, index, group)
}

func restore(n int, m int64, version, lastBatch uint64, shift uint32, csr []graph.CSRShard, shardVersions []uint64, workers, index, group int) (*Store, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("shard: restore with n=%d m=%d", n, m)
	}
	stride := 1 << shift
	wantShards := (n + stride - 1) / stride
	if len(csr) != wantShards || len(shardVersions) != wantShards {
		return nil, fmt.Errorf("shard: restore with %d shards / %d versions for %d nodes at stride %d, want %d",
			len(csr), len(shardVersions), n, stride, wantShards)
	}
	st := &Store{
		part:      Partition{shift: shift},
		workers:   workers,
		ownIndex:  index,
		ownGroup:  group,
		n:         n,
		m:         m,
		version:   version,
		lastBatch: lastBatch,
	}
	st.shards = make([]*shardMut, wantShards)
	for p := range csr {
		sh := &csr[p]
		if !st.ownsShard(p) {
			if len(sh.InOff) != 0 || len(sh.OutOff) != 0 || len(sh.InDst) != 0 || len(sh.OutDst) != 0 {
				return nil, fmt.Errorf("shard: restore shard %d: data present for a shard outside scope %d/%d",
					p, index, group)
			}
			st.shards[p] = &shardMut{version: shardVersions[p]}
			continue
		}
		lo := p * stride
		hi := lo + stride
		if hi > n {
			hi = n
		}
		local := hi - lo
		if len(sh.InOff) != local+1 || len(sh.OutOff) != local+1 {
			return nil, fmt.Errorf("shard: restore shard %d: offset arrays of length %d/%d, want %d",
				p, len(sh.InOff), len(sh.OutOff), local+1)
		}
		if int(sh.InOff[local]) != len(sh.InDst) || int(sh.OutOff[local]) != len(sh.OutDst) {
			return nil, fmt.Errorf("shard: restore shard %d: dst arrays of length %d/%d, want %d/%d",
				p, len(sh.InDst), len(sh.OutDst), sh.InOff[local], sh.OutOff[local])
		}
		sm := &shardMut{
			in:      make([][]graph.NodeID, local),
			out:     make([][]graph.NodeID, local),
			version: shardVersions[p],
		}
		for l := 0; l < local; l++ {
			if sh.InOff[l] > sh.InOff[l+1] || sh.OutOff[l] > sh.OutOff[l+1] {
				return nil, fmt.Errorf("shard: restore shard %d: offsets decrease at local node %d", p, l)
			}
			if in := sh.InDst[sh.InOff[l]:sh.InOff[l+1]]; len(in) > 0 {
				sm.in[l] = append([]graph.NodeID(nil), in...)
			}
			if out := sh.OutDst[sh.OutOff[l]:sh.OutOff[l+1]]; len(out) > 0 {
				sm.out[l] = append([]graph.NodeID(nil), out...)
			}
		}
		st.shards[p] = sm
	}
	snap := &StoreSnapshot{
		n:         n,
		m:         m,
		version:   version,
		lastBatch: lastBatch,
		shift:     shift,
		scoped:    group > 1,
		csr:       csr,
		versions:  append([]uint64(nil), shardVersions...),
	}
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("shard: restore: %w", err)
	}
	st.cur.Store(snap)
	st.publications.Add(1)
	return st, nil
}

// NumShards returns the current shard count.
func (st *Store) NumShards() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.shards)
}

// Partition returns the node-to-shard mapping.
func (st *Store) Partition() Partition { return st.part }

// NumNodes returns the number of nodes (mutable side).
func (st *Store) NumNodes() int { return st.n }

// NumEdges returns the number of directed edges (mutable side).
func (st *Store) NumEdges() int64 { return st.m }

// Version returns the mutation counter. Every AddEdge/RemoveEdge/AddNode
// increments it; published snapshots carry the value at publish time, so
// the serving stack's staleness checks work unchanged.
func (st *Store) Version() uint64 { return st.version }

func (st *Store) checkNode(v graph.NodeID) error {
	if v < 0 || int(v) >= st.n {
		return fmt.Errorf("shard: node %d out of range [0, %d)", v, st.n)
	}
	return nil
}

// InNeighbors returns the in-neighbor list of v from the mutable side,
// under the *graph.Graph reader contract. The slice is internal storage:
// do not modify; invalidated by the next mutation. On a scoped store
// only owned shards' nodes are readable.
func (st *Store) InNeighbors(v graph.NodeID) []graph.NodeID {
	return st.shards[st.part.ShardOf(v)].in[st.part.LocalOf(v)]
}

// OutNeighbors returns the out-neighbor list of u under the same contract
// as InNeighbors.
func (st *Store) OutNeighbors(u graph.NodeID) []graph.NodeID {
	return st.shards[st.part.ShardOf(u)].out[st.part.LocalOf(u)]
}

// InDegree returns |I(v)| on the mutable side.
func (st *Store) InDegree(v graph.NodeID) int { return len(st.InNeighbors(v)) }

// OutDegree returns |O(u)| on the mutable side.
func (st *Store) OutDegree(u graph.NodeID) int { return len(st.OutNeighbors(u)) }

var _ graph.VersionedView = (*Store)(nil)

// AddEdge inserts the directed edge u -> v with the same semantics as
// (*graph.Graph).AddEdge: self-loops rejected, parallel edges permitted,
// appended at the tail of both adjacency lists (order preservation is
// what keeps sharded results bit-identical to monolithic ones).
func (st *Store) AddEdge(u, v graph.NodeID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addEdgeLocked(u, v)
}

func (st *Store) addEdgeLocked(u, v graph.NodeID) error {
	if err := st.checkNode(u); err != nil {
		return err
	}
	if err := st.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("shard: self-loop %d -> %d rejected", u, v)
	}
	st.version++
	pu := st.part.ShardOf(u)
	su := st.shards[pu]
	if st.ownsShard(pu) {
		su.out[st.part.LocalOf(u)] = append(su.out[st.part.LocalOf(u)], v)
	}
	su.version = st.version
	pv := st.part.ShardOf(v)
	sv := st.shards[pv]
	if st.ownsShard(pv) {
		sv.in[st.part.LocalOf(v)] = append(sv.in[st.part.LocalOf(v)], u)
	}
	sv.version = st.version
	st.m++
	return nil
}

// RemoveEdge removes one occurrence of u -> v, mirroring
// (*graph.Graph).RemoveEdge exactly (first match swapped with the tail),
// so the surviving neighbor order matches a monolithic graph that saw the
// same operation sequence.
func (st *Store) RemoveEdge(u, v graph.NodeID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.removeEdgeLocked(u, v)
}

func (st *Store) removeEdgeLocked(u, v graph.NodeID) error {
	if err := st.checkNode(u); err != nil {
		return err
	}
	if err := st.checkNode(v); err != nil {
		return err
	}
	pu := st.part.ShardOf(u)
	su := st.shards[pu]
	ownU := st.ownsShard(pu)
	if ownU && !graph.RemoveOne(&su.out[st.part.LocalOf(u)], v) {
		return fmt.Errorf("shard: edge %d -> %d not found", u, v)
	}
	pv := st.part.ShardOf(v)
	sv := st.shards[pv]
	if st.ownsShard(pv) && !graph.RemoveOne(&sv.in[st.part.LocalOf(v)], u) {
		if ownU {
			panic("shard: adjacency lists out of sync")
		}
		// Scoped store owning only v's shard: the in-side IS the
		// existence check here.
		return fmt.Errorf("shard: edge %d -> %d not found", u, v)
	}
	st.version++
	su.version = st.version
	sv.version = st.version
	st.m--
	return nil
}

// EdgeOp is one edge mutation in a durable batch: the op form the write
// plane (write-ahead log, ApplyBatch, router broadcast) works in.
type EdgeOp struct {
	Remove bool
	U, V   graph.NodeID
}

// LastBatch returns the id of the last batch ApplyBatch decided (applied
// or rejected); 0 means none. It is the apply-once watermark recovery and
// the router's retry path compare against.
func (st *Store) LastBatch() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastBatch
}

// ApplyBatch applies one edge batch atomically under a single lock hold:
// either every op applies, or the applied prefix is rolled back in
// reverse order and the first failure is returned.
//
// Batches are identified: id 0 self-assigns the next id (LastBatch()+1);
// a non-zero id at or below the watermark is a RETRY of a batch this
// store has already decided, and returns the current version with no
// error and no mutation — apply-once semantics, which is what makes a
// broadcast retry after a lost reply safe. A non-zero id always advances
// the watermark BEFORE the ops are attempted, so a batch that fails
// semantically is decided (rejected) exactly once too: replaying the log
// after a crash re-runs it against the same state, fails it identically,
// and the store converges on the same graph either way.
func (st *Store) ApplyBatch(id uint64, ops []EdgeOp) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id == 0 {
		id = st.lastBatch + 1
	} else if id <= st.lastBatch {
		return st.version, nil // already decided: apply-once
	}
	st.lastBatch = id
	apply := func(op EdgeOp) error {
		if op.Remove {
			return st.removeEdgeLocked(op.U, op.V)
		}
		return st.addEdgeLocked(op.U, op.V)
	}
	for i, op := range ops {
		if err := apply(op); err != nil {
			// Roll the applied prefix back in reverse order. Every inverse
			// must succeed because the forward op just did.
			for j := i - 1; j >= 0; j-- {
				inv := ops[j]
				inv.Remove = !inv.Remove
				if rerr := apply(inv); rerr != nil {
					panic(fmt.Sprintf("shard: rollback failed at op %d: %v", j, rerr))
				}
			}
			kind := "add"
			if op.Remove {
				kind = "remove"
			}
			return st.version, fmt.Errorf("shard: batch %d op %d (%s %d->%d): %w; batch rolled back", id, i, kind, op.U, op.V, err)
		}
	}
	for _, fn := range st.onApplied {
		fn(id, ops)
	}
	return st.version, nil
}

// SubscribeApplied registers fn to run after every successfully applied
// batch with the batch's id and ops — the applied-batch stream that
// keeps derived state (the hot-source index tier) fresh without polling.
// Retried (apply-once no-op) and rejected batches never fire it.
//
// fn runs under the store's apply lock: it must be fast, must not call
// back into the store, and must not retain ops past the call (the slice
// is the caller's). Not safe to call concurrently with ApplyBatch;
// subscribe during wiring, before writes flow.
func (st *Store) SubscribeApplied(fn func(id uint64, ops []EdgeOp)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onApplied = append(st.onApplied, fn)
}

// AddNode appends a new isolated node and returns its id, growing the
// shard set when the new id falls past the last shard's range.
func (st *Store) AddNode() graph.NodeID {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := graph.NodeID(st.n)
	st.n++
	st.version++
	p := st.part.ShardOf(id)
	for p >= len(st.shards) {
		st.shards = append(st.shards, &shardMut{})
	}
	sm := st.shards[p]
	if st.ownsShard(p) {
		sm.in = append(sm.in, nil)
		sm.out = append(sm.out, nil)
	}
	sm.version = st.version
	return id
}

// Validate checks cross-shard invariants: edge-count agreement between
// the in- and out-sides and every destination id in range. O(n+m),
// intended for tests.
func (st *Store) Validate() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ownGroup > 1 {
		// A scoped store holds only owned shards' lists: cross-shard
		// agreement and the global edge count are not checkable here.
		// Validate what is: destination ids in the owned lists.
		for p, sm := range st.shards {
			for _, side := range [][][]graph.NodeID{sm.out, sm.in} {
				for l, lst := range side {
					for _, w := range lst {
						if err := st.checkNode(w); err != nil {
							return fmt.Errorf("shard %d: local %d invalid: %w", p, l, err)
						}
					}
				}
			}
		}
		return nil
	}
	var nIn, nOut int64
	counts := make(map[[2]graph.NodeID]int64)
	for p, sm := range st.shards {
		base := p * st.part.Stride()
		for l, lst := range sm.out {
			u := graph.NodeID(base + l)
			for _, v := range lst {
				if err := st.checkNode(v); err != nil {
					return fmt.Errorf("shard %d: out[%d] invalid: %w", p, u, err)
				}
				counts[[2]graph.NodeID{u, v}]++
				nOut++
			}
		}
		for l, lst := range sm.in {
			v := graph.NodeID(base + l)
			for _, u := range lst {
				if err := st.checkNode(u); err != nil {
					return fmt.Errorf("shard %d: in[%d] invalid: %w", p, v, err)
				}
				counts[[2]graph.NodeID{u, v}]--
				nIn++
			}
		}
	}
	if nOut != nIn || nOut != st.m {
		return fmt.Errorf("shard: edge counts disagree: out=%d in=%d m=%d", nOut, nIn, st.m)
	}
	for e, c := range counts {
		if c != 0 {
			return fmt.Errorf("shard: edge %d -> %d appears %+d more times in out-lists than in-lists", e[0], e[1], c)
		}
	}
	return nil
}

// Stats reports publication effectiveness since the store was created:
// how many snapshot publications ran, how many shard CSRs each rebuilt vs
// reused from the previous snapshot, and how many edges were re-encoded
// in total (the actual publication work, vs m per publication for a full
// rebuild).
type Stats struct {
	Shards        int
	Stride        int
	Publications  int64
	NoopPublishes int64
	// AbortedPublishes counts publications abandoned by context
	// cancellation before the atomic store; their partially re-encoded
	// shards still contribute to EdgesReEncoded (the work was done).
	AbortedPublishes int64
	ShardsRebuilt    int64
	ShardsReused     int64
	EdgesReEncoded   int64
}

// Stats returns a consistent-enough snapshot of the publication counters
// (each counter is individually atomic). It never takes the store mutex —
// the shard count comes from the published snapshot — so /stats stays
// lock-free even while a large batch holds the write path.
func (st *Store) Stats() Stats {
	shards := 0
	if cur := st.cur.Load(); cur != nil {
		shards = cur.NumShards()
	}
	return Stats{
		Shards:           shards,
		Stride:           st.part.Stride(),
		Publications:     st.publications.Load(),
		NoopPublishes:    st.noopPublishes.Load(),
		AbortedPublishes: st.abortedPublishes.Load(),
		ShardsRebuilt:    st.shardsRebuilt.Load(),
		ShardsReused:     st.shardsReused.Load(),
		EdgesReEncoded:   st.edgesReEncoded.Load(),
	}
}
