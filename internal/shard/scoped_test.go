package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"probesim/internal/graph"
)

// scopedFixture builds one full store and a W-worker fleet of scoped
// stores over the same random graph.
func scopedFixture(t *testing.T, n, shards, workers int, seed int64) (*Store, []*Store, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < 6*n; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	full := NewStore(g, shards, 0)
	scoped := make([]*Store, workers)
	for w := range scoped {
		scoped[w] = NewStoreScoped(g, shards, 0, w, workers)
	}
	return full, scoped, g
}

// assertScopedAgreement checks the fleet-wide lockstep contract: every
// scoped store agrees with the full store on all counters and per-shard
// versions, owned shard CSRs are byte-identical, non-owned are absent.
func assertScopedAgreement(t *testing.T, full *Store, scoped []*Store) {
	t.Helper()
	fs := full.Current()
	for w, st := range scoped {
		if st.Version() != full.Version() || st.NumEdges() != full.NumEdges() || st.NumNodes() != full.NumNodes() {
			t.Fatalf("worker %d diverged: version %d/%d edges %d/%d nodes %d/%d",
				w, st.Version(), full.Version(), st.NumEdges(), full.NumEdges(), st.NumNodes(), full.NumNodes())
		}
		if st.LastBatch() != full.LastBatch() {
			t.Fatalf("worker %d watermark %d, full %d", w, st.LastBatch(), full.LastBatch())
		}
		ss := st.Current()
		if !ss.Scoped() {
			t.Fatalf("worker %d snapshot not marked scoped", w)
		}
		if err := ss.Validate(); err != nil {
			t.Fatalf("worker %d snapshot invalid: %v", w, err)
		}
		if ss.NumShards() != fs.NumShards() {
			t.Fatalf("worker %d has %d shards, full %d", w, ss.NumShards(), fs.NumShards())
		}
		for p := 0; p < ss.NumShards(); p++ {
			if ss.ShardVersion(p) != fs.ShardVersion(p) {
				t.Fatalf("worker %d shard %d version %d, full %d", w, p, ss.ShardVersion(p), fs.ShardVersion(p))
			}
			owned := p%len(scoped) == w
			if ss.ShardPresent(p) != owned {
				t.Fatalf("worker %d shard %d present=%v, want %v", w, p, ss.ShardPresent(p), owned)
			}
			if owned && !reflect.DeepEqual(ss.Shard(p), fs.Shard(p)) {
				t.Fatalf("worker %d shard %d CSR differs from full store", w, p)
			}
		}
	}
}

func TestScopedStoreLockstepUnderChurn(t *testing.T) {
	const workers = 3
	full, scoped, g := scopedFixture(t, 200, 16, workers, 11)
	assertScopedAgreement(t, full, scoped)

	// Drive identical batches (including removes of known-present edges
	// and one rejected batch) through the full store and every worker.
	rng := rand.New(rand.NewSource(23))
	all := append([]*Store{full}, scoped...)
	var batch uint64
	for round := 0; round < 20; round++ {
		var ops []EdgeOp
		for i := 0; i < 8; i++ {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			if outs := full.OutNeighbors(u); len(outs) > 0 && rng.Intn(3) == 0 {
				ops = append(ops, EdgeOp{Remove: true, U: u, V: outs[rng.Intn(len(outs))]})
				// One remove per batch: a second random remove could pick
				// the same occurrence twice, which the full store rejects
				// but a worker owning neither endpoint cannot see.
				break
			}
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u != v {
				ops = append(ops, EdgeOp{Remove: false, U: u, V: v})
			}
		}
		if len(ops) == 0 {
			continue
		}
		batch++
		for _, st := range all {
			if _, err := st.ApplyBatch(batch, ops); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
		}
		for _, st := range all {
			st.Publish()
		}
		assertScopedAgreement(t, full, scoped)
	}

	// Node growth keeps the fleet aligned too.
	ids := make([]graph.NodeID, len(all))
	for i, st := range all {
		ids[i] = st.AddNode()
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[0] {
			t.Fatalf("AddNode diverged: %v", ids)
		}
	}
	batch++
	ops := []EdgeOp{{U: ids[0], V: 0}, {U: 1, V: ids[0]}}
	for _, st := range all {
		if _, err := st.ApplyBatch(batch, ops); err != nil {
			t.Fatal(err)
		}
		st.Publish()
	}
	assertScopedAgreement(t, full, scoped)

	for _, st := range all {
		if err := st.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScopedRemoveValidation pins the ownership-aware existence check: a
// remove of a missing edge is rejected by every worker owning one of the
// endpoints' shards, and the whole batch rolls back there.
func TestScopedRemoveValidation(t *testing.T) {
	full, scoped, _ := scopedFixture(t, 64, 8, 2, 5)
	// Find an edge that does NOT exist.
	var u, v graph.NodeID
found:
	for u = 0; int(u) < full.NumNodes(); u++ {
		for v = 0; int(v) < full.NumNodes(); v++ {
			if u == v {
				continue
			}
			present := false
			for _, w := range full.OutNeighbors(u) {
				if w == v {
					present = true
					break
				}
			}
			if !present {
				break found
			}
		}
	}
	ops := []EdgeOp{{U: u, V: v, Remove: true}}
	if _, err := full.ApplyBatch(1, ops); err == nil {
		t.Fatal("full store accepted a remove of a missing edge")
	}
	pu, pv := full.Partition().ShardOf(u), full.Partition().ShardOf(v)
	for w, st := range scoped {
		_, err := st.ApplyBatch(1, ops)
		ownsEndpoint := pu%2 == w || pv%2 == w
		if ownsEndpoint && err == nil {
			t.Fatalf("worker %d owns an endpoint shard but accepted the bad remove", w)
		}
		if !ownsEndpoint && err != nil {
			t.Fatalf("worker %d owns neither endpoint but rejected: %v", w, err)
		}
	}
}

// TestScopedRestoreRoundTrip checks RestoreScoped against a scoped
// snapshot's own blocks, and that it rejects out-of-scope data.
func TestScopedRestoreRoundTrip(t *testing.T) {
	_, scoped, _ := scopedFixture(t, 128, 8, 2, 7)
	for w, st := range scoped {
		snap := st.Current()
		csr := make([]graph.CSRShard, snap.NumShards())
		versions := make([]uint64, snap.NumShards())
		for p := range csr {
			csr[p] = snap.Shard(p)
			versions[p] = snap.ShardVersion(p)
		}
		re, err := RestoreScoped(snap.NumNodes(), snap.NumEdges(), snap.Version(), snap.LastBatch(),
			snap.Shift(), csr, versions, 0, w, 2)
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		rs := re.Current()
		for p := 0; p < rs.NumShards(); p++ {
			if !reflect.DeepEqual(rs.Shard(p), snap.Shard(p)) || rs.ShardVersion(p) != snap.ShardVersion(p) {
				t.Fatalf("worker %d shard %d did not round-trip", w, p)
			}
		}
		// The OTHER worker's scope must refuse this data.
		if _, err := RestoreScoped(snap.NumNodes(), snap.NumEdges(), snap.Version(), snap.LastBatch(),
			snap.Shift(), csr, versions, 0, 1-w, 2); err == nil {
			t.Fatalf("worker %d data restored under the wrong scope", w)
		}
	}
}

func ExampleNewStoreScoped() {
	g := graph.New(8)
	_ = g.AddEdge(0, 1)
	st := NewStoreScoped(g, 4, 0, 0, 2) // owns shards 0 and 2 of 4
	snap := st.Current()
	fmt.Println(snap.Scoped(), snap.ShardPresent(0), snap.ShardPresent(1))
	// Output: true true false
}
