package shard_test

// The sharded half of the PR 1 equivalence property: for fixed seeds,
// ProbeSim queries on a sharded store's published snapshot must be
// BIT-identical to queries on the monolithic graph and its CSR snapshot,
// for every shard count and every execution mode, including under
// randomized edge churn. Walk sampling and randomized probes consume
// randomness per neighbor index, so this property holds iff the sharded
// composite exposes every neighbor list in exactly the monolithic order —
// which is also why it is a sharp detector of any re-encoding bug.

import (
	"context"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

var shardCounts = []int{1, 2, 7, 64}

func assertSameVector(t *testing.T, ctx string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", ctx, len(got), len(want))
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("%s: diverges at node %d: %v != %v", ctx, v, got[v], want[v])
		}
	}
}

// TestShardedSingleSourceBitIdentical runs every mode on a power-law
// graph across shard counts {1, 2, 7, 64}: monolithic graph, monolithic
// snapshot, sharded snapshot, and the sharded store's mutable view must
// all return the same bits.
func TestShardedSingleSourceBitIdentical(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 11)
	snap := g.Snapshot()
	for _, mode := range []core.Mode{core.ModeAuto, core.ModeBasic, core.ModePruned, core.ModeBatch, core.ModeRandomized, core.ModeHybrid} {
		opt := core.Options{Mode: mode, EpsA: 0.2, Seed: 5, Workers: 4, NumWalks: 300}
		for _, p := range shardCounts {
			st := shard.NewStore(g, p, 2)
			ex := core.NewExecutorOn(st, opt)
			for u := graph.NodeID(0); u < 6; u++ {
				want, err := core.SingleSource(context.Background(), g, u, opt)
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				fromSnap, err := core.SingleSource(context.Background(), snap, u, opt)
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				fromSharded, err := core.SingleSource(context.Background(), st.Current(), u, opt)
				if err != nil {
					t.Fatalf("mode %v p=%d: %v", mode, p, err)
				}
				fromStore, err := core.SingleSource(context.Background(), st, u, opt)
				if err != nil {
					t.Fatalf("mode %v p=%d: %v", mode, p, err)
				}
				pooled, err := ex.SingleSource(context.Background(), u)
				if err != nil {
					t.Fatalf("mode %v p=%d: %v", mode, p, err)
				}
				assertSameVector(t, "monolithic snapshot", want, fromSnap)
				assertSameVector(t, "sharded snapshot", want, fromSharded)
				assertSameVector(t, "sharded store (mutable view)", want, fromStore)
				assertSameVector(t, "sharded executor (pooled)", want, pooled)
			}
		}
	}
}

// TestShardedAgreementUnderChurn mirrors a randomized stream of edge
// inserts and removals into a monolithic graph and one store per shard
// count, republishing after every batch, and demands bit-identical
// queries at every step. Removal order matters (swap-with-tail), so this
// pins the mutation semantics, not just the encoder.
func TestShardedAgreementUnderChurn(t *testing.T) {
	const n = 200
	rng := xrand.New(47)
	g := gen.ErdosRenyi(n, 800, 3)
	opt := core.Options{EpsA: 0.25, Seed: 9, Workers: 2, NumWalks: 200}

	stores := make([]*shard.Store, len(shardCounts))
	for i, p := range shardCounts {
		stores[i] = shard.NewStore(g, p, 2)
	}
	for round := 0; round < 8; round++ {
		// One churn batch, mirrored everywhere.
		for i := 0; i < 12; i++ {
			if rng.Float64() < 0.5 || g.NumEdges() == 0 {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u == v {
					continue
				}
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				for _, st := range stores {
					if err := st.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				u := graph.NodeID(rng.Intn(n))
				for g.OutDegree(u) == 0 {
					u = (u + 1) % n
				}
				v := g.OutNeighbors(u)[rng.Intn(g.OutDegree(u))]
				if err := g.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				for _, st := range stores {
					if err := st.RemoveEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		u := graph.NodeID(round * 29 % n)
		want, err := core.SingleSource(context.Background(), g, u, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range stores {
			snap := st.Publish()
			if snap.Version() != st.Version() {
				t.Fatalf("p=%d: published version %d != store version %d", shardCounts[i], snap.Version(), st.Version())
			}
			got, err := core.SingleSource(context.Background(), snap, u, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSameVector(t, "churned sharded snapshot", want, got)
		}
	}
}

// TestShardedComponentsAndStatsAgree checks the analysis paths the server
// moved onto snapshots: components and degree stats must agree between
// the monolithic graph and the sharded snapshot.
func TestShardedComponentsAndStatsAgree(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 9)
	for _, p := range shardCounts {
		snap := shard.NewStore(g, p, 0).Current()
		wantSCC, wantSCCCount := graph.StronglyConnected(g)
		gotSCC, gotSCCCount := graph.StronglyConnected(snap)
		if wantSCCCount != gotSCCCount {
			t.Fatalf("p=%d: SCC count %d != %d", p, gotSCCCount, wantSCCCount)
		}
		for v := range wantSCC {
			if wantSCC[v] != gotSCC[v] {
				t.Fatalf("p=%d: SCC id of node %d: %d != %d", p, v, gotSCC[v], wantSCC[v])
			}
		}
		wantWCC, wantWCCCount := graph.WeaklyConnected(g)
		gotWCC, gotWCCCount := graph.WeaklyConnected(snap)
		if wantWCCCount != gotWCCCount {
			t.Fatalf("p=%d: WCC count %d != %d", p, gotWCCCount, wantWCCCount)
		}
		for v := range wantWCC {
			if wantWCC[v] != gotWCC[v] {
				t.Fatalf("p=%d: WCC id of node %d: %d != %d", p, v, gotWCC[v], wantWCC[v])
			}
		}
	}
}
