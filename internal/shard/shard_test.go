package shard

import (
	"testing"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// randomGraph builds a random directed graph with n nodes and up to m
// edges (self-loops skipped).
func randomGraph(t *testing.T, n, m int, rng *xrand.RNG) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// assertViewsMatch checks that two views expose identical adjacency:
// same counts, same degrees, same neighbor lists in the same order (the
// order is what the bit-identical query guarantee rides on).
func assertViewsMatch(t *testing.T, want, got graph.View) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("views disagree on size: %d/%d vs %d/%d",
			want.NumNodes(), want.NumEdges(), got.NumNodes(), got.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < want.NumNodes(); v++ {
		if want.InDegree(v) != got.InDegree(v) || want.OutDegree(v) != got.OutDegree(v) {
			t.Fatalf("node %d: degrees (%d,%d) vs (%d,%d)", v,
				want.InDegree(v), want.OutDegree(v), got.InDegree(v), got.OutDegree(v))
		}
		for i, w := range want.InNeighbors(v) {
			if got.InNeighbors(v)[i] != w {
				t.Fatalf("node %d in[%d]: %d vs %d", v, i, got.InNeighbors(v)[i], w)
			}
		}
		for i, w := range want.OutNeighbors(v) {
			if got.OutNeighbors(v)[i] != w {
				t.Fatalf("node %d out[%d]: %d vs %d", v, i, got.OutNeighbors(v)[i], w)
			}
		}
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1023} {
		for _, p := range []int{1, 2, 7, 64, 1000} {
			pt := NewPartition(n, p)
			count := pt.Count(n)
			if n > 0 && (count < 1 || count > p) {
				t.Fatalf("n=%d p=%d: count %d outside [1, p]", n, p, count)
			}
			for v := 0; v < n; v++ {
				sh := pt.ShardOf(graph.NodeID(v))
				if sh < 0 || sh >= count {
					t.Fatalf("n=%d p=%d: node %d in shard %d of %d", n, p, v, sh, count)
				}
				if l := pt.LocalOf(graph.NodeID(v)); l != v-sh*pt.Stride() {
					t.Fatalf("n=%d p=%d: node %d local %d, want %d", n, p, v, l, v-sh*pt.Stride())
				}
			}
		}
	}
}

// TestStoreMatchesGraph checks that both the store's mutable side and its
// published snapshot are indistinguishable from the source graph through
// the View interface, across shard counts and graph shapes.
func TestStoreMatchesGraph(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(80)
		m := rng.Intn(5 * n)
		g := randomGraph(t, n, m, rng)
		for _, p := range []int{1, 2, 7, 64} {
			st := NewStore(g, p, 2)
			if err := st.Validate(); err != nil {
				t.Fatal(err)
			}
			snap := st.Current()
			if err := snap.Validate(); err != nil {
				t.Fatal(err)
			}
			assertViewsMatch(t, g, st)
			assertViewsMatch(t, g, snap)
			if gs, ss := g.ComputeStats(), snap.ComputeStats(); gs != ss {
				t.Fatalf("p=%d: snapshot stats %+v != graph stats %+v", p, ss, gs)
			}
		}
	}
}

// TestShardedAdjMatchesInterface checks the devirtualized sharded Adj
// against the snapshot's interface methods: same lists, same degrees.
func TestShardedAdjMatchesInterface(t *testing.T) {
	rng := xrand.New(77)
	g := randomGraph(t, 200, 900, rng)
	st := NewStore(g, 7, 0)
	snap := st.Current()
	adj := graph.ResolveAdj(snap)
	if adj.NumNodes() != snap.NumNodes() {
		t.Fatalf("adj nodes %d != %d", adj.NumNodes(), snap.NumNodes())
	}
	for v := graph.NodeID(0); int(v) < snap.NumNodes(); v++ {
		if adj.InDegree(v) != snap.InDegree(v) || adj.OutDegree(v) != snap.OutDegree(v) {
			t.Fatalf("node %d: adj degrees diverge", v)
		}
		in, out := adj.In(v), adj.Out(v)
		for i, w := range snap.InNeighbors(v) {
			if in[i] != w {
				t.Fatalf("node %d in[%d]: adj %d != snapshot %d", v, i, in[i], w)
			}
		}
		for i, w := range snap.OutNeighbors(v) {
			if out[i] != w {
				t.Fatalf("node %d out[%d]: adj %d != snapshot %d", v, i, out[i], w)
			}
		}
	}
}

// TestPublishRebuildsOnlyTouchedShards pins the tentpole property: after
// a publication, a small edge batch must rebuild only the shards whose
// ranges it touched, reusing every other shard CSR by reference.
func TestPublishRebuildsOnlyTouchedShards(t *testing.T) {
	g := gen.ErdosRenyi(4096, 16384, 5)
	st := NewStore(g, 64, 4)
	if got := st.NumShards(); got != 64 {
		t.Fatalf("expected 64 shards for 4096 nodes, got %d", got)
	}
	before := st.Stats()
	s0 := st.Current()

	// One edge inside shard 3's range (both endpoints), far from shard 0.
	stride := st.Partition().Stride()
	u := graph.NodeID(3 * stride)
	v := graph.NodeID(3*stride + 1)
	if err := st.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	s1 := st.Publish()
	after := st.Stats()
	if rebuilt := after.ShardsRebuilt - before.ShardsRebuilt; rebuilt != 1 {
		t.Fatalf("single intra-shard edge rebuilt %d shards, want 1", rebuilt)
	}
	if reused := after.ShardsReused - before.ShardsReused; reused != 63 {
		t.Fatalf("reused %d shards, want 63", reused)
	}
	// Reuse is by reference: untouched shard CSR arrays are shared.
	if &s0.csr[0].InDst[0] != &s1.csr[0].InDst[0] {
		t.Fatal("untouched shard was copied, not shared")
	}
	if &s0.csr[3].OutDst[0] == &s1.csr[3].OutDst[0] {
		t.Fatal("touched shard was not rebuilt")
	}
	// Old snapshot immutability.
	if s0.NumEdges() != s1.NumEdges()-1 {
		t.Fatalf("old snapshot mutated: %d vs %d edges", s0.NumEdges(), s1.NumEdges())
	}
	// A cross-shard edge touches exactly two shards.
	if err := st.AddEdge(graph.NodeID(5*stride), graph.NodeID(9*stride)); err != nil {
		t.Fatal(err)
	}
	mid := st.Stats()
	st.Publish()
	after = st.Stats()
	if rebuilt := after.ShardsRebuilt - mid.ShardsRebuilt; rebuilt != 2 {
		t.Fatalf("cross-shard edge rebuilt %d shards, want 2", rebuilt)
	}
	// No-op publish returns the identical snapshot.
	s2 := st.Current()
	if st.Publish() != s2 {
		t.Fatal("no-op publish replaced the snapshot")
	}
	if st.Stats().NoopPublishes == 0 {
		t.Fatal("no-op publish not counted")
	}
}

// TestStoreChurnAgainstGraph mirrors random mutations into a monolithic
// graph and a sharded store and re-checks structural equality after every
// publication round, including removals (whose swap-with-tail semantics
// must match exactly for bit-identical queries).
func TestStoreChurnAgainstGraph(t *testing.T) {
	rng := xrand.New(13)
	const n = 120
	g := randomGraph(t, n, 400, rng)
	for _, p := range []int{1, 2, 7, 64} {
		st := NewStore(g.Clone(), p, 3)
		mirror := g.Clone()
		for round := 0; round < 15; round++ {
			for i := 0; i < 20; i++ {
				if rng.Float64() < 0.55 || mirror.NumEdges() == 0 {
					u := graph.NodeID(rng.Intn(n))
					v := graph.NodeID(rng.Intn(n))
					if u == v {
						continue
					}
					if err := mirror.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
					if err := st.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else {
					u := graph.NodeID(rng.Intn(n))
					for mirror.OutDegree(u) == 0 {
						u = (u + 1) % n
					}
					v := mirror.OutNeighbors(u)[rng.Intn(mirror.OutDegree(u))]
					if err := mirror.RemoveEdge(u, v); err != nil {
						t.Fatal(err)
					}
					if err := st.RemoveEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := st.Validate(); err != nil {
				t.Fatalf("p=%d round %d: %v", p, round, err)
			}
			snap := st.Publish()
			if err := snap.Validate(); err != nil {
				t.Fatalf("p=%d round %d: %v", p, round, err)
			}
			assertViewsMatch(t, mirror, st)
			assertViewsMatch(t, mirror, snap)
		}
	}
}

// TestStoreAddNode grows the store past its initial shard range and
// checks the new nodes are usable.
func TestStoreAddNode(t *testing.T) {
	st := NewEmpty(3, 2, 0)
	before := st.NumShards()
	var last graph.NodeID
	for i := 0; i < 10; i++ {
		last = st.AddNode()
	}
	if want := graph.NodeID(12); last != want {
		t.Fatalf("last added node %d, want %d", last, want)
	}
	if st.NumShards() <= before {
		t.Fatalf("shard count did not grow past %d", before)
	}
	if err := st.AddEdge(0, last); err != nil {
		t.Fatal(err)
	}
	snap := st.Publish()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes() != 13 || snap.NumEdges() != 1 {
		t.Fatalf("snapshot %d nodes/%d edges, want 13/1", snap.NumNodes(), snap.NumEdges())
	}
	if got := snap.InNeighbors(last); len(got) != 1 || got[0] != 0 {
		t.Fatalf("in-neighbors of %d = %v, want [0]", last, got)
	}
}

// TestStoreRejectsBadEdges mirrors the graph's validation behavior.
func TestStoreRejectsBadEdges(t *testing.T) {
	st := NewEmpty(4, 2, 0)
	if err := st.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := st.AddEdge(-1, 2); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := st.AddEdge(0, 4); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := st.RemoveEdge(0, 1); err == nil {
		t.Fatal("removing a missing edge succeeded")
	}
}
