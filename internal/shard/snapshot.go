package shard

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"probesim/internal/graph"
)

// StoreSnapshot is the immutable composite read side of a Store: one CSR
// per shard plus the per-shard versions they encode. It implements
// graph.View and graph.AdjProvider, so every kernel runs on it through
// the same devirtualized graph.Adj fast path it uses on a monolithic
// *graph.Snapshot, with bit-identical results.
//
// Snapshots share unrebuilt shard CSRs with their predecessors by
// reference; all of it is immutable, so any number of queries may read
// any number of generations concurrently with no synchronization.
type StoreSnapshot struct {
	n         int
	m         int64
	version   uint64
	lastBatch uint64
	shift     uint32

	// scoped marks a shard-local store's snapshot: shards outside the
	// store's scope are ABSENT (zero-length CSR arrays) rather than
	// encoded, and validation skips them. See the scoping notes on Store.
	scoped bool

	csr      []graph.CSRShard
	versions []uint64 // store version each shard CSR was built at

	// spans caches the dense per-node span arrays behind the devirtualized
	// Adj path: node v's list within its shard's dst array is the packed
	// [start, end) span (graph.PackSpan). Keeping these global rather than
	// per-shard is what puts the sharded READ path at parity with the
	// monolithic CSR — one independent load yields both offsets and the
	// degree, and no offset load ever waits on a shard-header load.
	//
	// They are materialized LAZILY by the first query on this snapshot
	// (and shared by every later one), so the WRITE path stays strictly
	// O(batch + touched shards): publication never touches them. The
	// densification itself is an O(n) scan of the per-shard offsets
	// (16 bytes/node written, a few percent of a full CSR rebuild),
	// amortized across every query served from this generation.
	spans atomic.Pointer[spanArrays]
}

// spanArrays bundles the lazily built dense span arrays.
type spanArrays struct {
	in, out []uint64
}

var (
	_ graph.VersionedView = (*StoreSnapshot)(nil)
	_ graph.AdjProvider   = (*StoreSnapshot)(nil)
)

// NumNodes returns the number of nodes.
func (s *StoreSnapshot) NumNodes() int { return s.n }

// NumEdges returns the number of directed edges.
func (s *StoreSnapshot) NumEdges() int64 { return s.m }

// Version returns the store's mutation counter at publish time.
func (s *StoreSnapshot) Version() uint64 { return s.version }

// LastBatch returns the store's apply-once batch watermark at publish
// time: every durable batch with id <= LastBatch is reflected in this
// snapshot. A checkpoint of the snapshot therefore covers the write-ahead
// log exactly through this id.
func (s *StoreSnapshot) LastBatch() uint64 { return s.lastBatch }

// NumShards returns the number of shard CSRs in the composite.
func (s *StoreSnapshot) NumShards() int { return len(s.csr) }

// ProvideAdj implements graph.AdjProvider: the sharded devirtualized
// accessor over the per-shard dst arrays and the dense global span
// arrays, materializing the latter on first use.
func (s *StoreSnapshot) ProvideAdj() graph.Adj {
	sp := s.spanArrays()
	return graph.NewShardedAdj(s, s.csr, s.shift, sp.in, sp.out)
}

// spanArrays returns the dense span arrays, building them on the first
// call. Concurrent first queries may build duplicates; the content is
// deterministic, one wins the CAS, and the rest are garbage — a benign
// race that keeps the query path lock-free.
func (s *StoreSnapshot) spanArrays() *spanArrays {
	if sp := s.spans.Load(); sp != nil {
		return sp
	}
	buf := make([]uint64, 2*s.n)
	sp := &spanArrays{in: buf[:s.n:s.n], out: buf[s.n:]}
	stride := 1 << s.shift
	for p := range s.csr {
		sh := &s.csr[p]
		base := p * stride
		for l := 0; l+1 < len(sh.InOff); l++ {
			sp.in[base+l] = graph.PackSpan(sh.InOff[l], sh.InOff[l+1])
			sp.out[base+l] = graph.PackSpan(sh.OutOff[l], sh.OutOff[l+1])
		}
	}
	if !s.spans.CompareAndSwap(nil, sp) {
		return s.spans.Load()
	}
	return sp
}

// SpansMaterialized reports whether the dense span arrays have been
// built (eagerly or by a query) — observability for the eager-span path.
func (s *StoreSnapshot) SpansMaterialized() bool { return s.spans.Load() != nil }

// Shift returns log2 of the node stride: node v's lists live in shard
// v>>Shift(). Exposed for the shard engine plane, which must agree with
// the store about ownership without holding a *Store.
func (s *StoreSnapshot) Shift() uint32 { return s.shift }

// Shard returns shard p's immutable CSR block — the "resolve adjacency
// spans" primitive of the shard engine API. The block aliases the
// snapshot's storage (never copied, never invalidated), so a local engine
// serves it by reference and a remote engine serializes it straight onto
// the wire.
func (s *StoreSnapshot) Shard(p int) graph.CSRShard { return s.csr[p] }

// ShardVersion returns the store version shard p's CSR was encoded at —
// the per-shard dirtiness signal publication compares, exposed so engines
// can report fine-grained staleness.
func (s *StoreSnapshot) ShardVersion(p int) uint64 { return s.versions[p] }

// TouchedSince returns the indices of every shard whose contents differ
// between prev (an older snapshot of the same store) and s: shards whose
// encoded version moved, plus any shards s has that prev predates. It is
// the publish-side complement of the applied-batch stream — a consumer
// holding per-shard dependency sets (the hot-source index tier's install
// race check) intersects against it to learn which derived entries the
// publications since prev could have affected. Both snapshots are
// immutable, so this is safe anytime and O(shards).
func (s *StoreSnapshot) TouchedSince(prev *StoreSnapshot) []int {
	if prev == nil {
		touched := make([]int, len(s.csr))
		for p := range touched {
			touched[p] = p
		}
		return touched
	}
	var touched []int
	for p := range s.csr {
		if p >= len(prev.csr) || s.versions[p] != prev.versions[p] {
			touched = append(touched, p)
		}
	}
	return touched
}

// Scoped reports whether this snapshot came from a shard-local store:
// shards outside the store's scope are absent.
func (s *StoreSnapshot) Scoped() bool { return s.scoped }

// ShardPresent reports whether shard p's CSR block is actually held by
// this snapshot. Always true on a full store's snapshot (a present shard
// covers at least one node, so its offset arrays are never empty);
// false for a scoped snapshot's non-owned shards. Engines must refuse to
// serve adjacency or walks out of an absent shard — its spans read as
// empty lists, which would silently truncate walks.
func (s *StoreSnapshot) ShardPresent(p int) bool { return len(s.csr[p].InOff) > 0 }

func (s *StoreSnapshot) shardOf(v graph.NodeID) (*graph.CSRShard, uint32) {
	return &s.csr[uint32(v)>>s.shift], uint32(v) & (uint32(1)<<s.shift - 1)
}

// InNeighbors returns the in-neighbor list of v. The slice aliases the
// snapshot's storage; it is immutable and never invalidated.
func (s *StoreSnapshot) InNeighbors(v graph.NodeID) []graph.NodeID {
	sh, l := s.shardOf(v)
	return sh.InDst[sh.InOff[l]:sh.InOff[l+1]]
}

// OutNeighbors returns the out-neighbor list of u under the same contract
// as InNeighbors.
func (s *StoreSnapshot) OutNeighbors(u graph.NodeID) []graph.NodeID {
	sh, l := s.shardOf(u)
	return sh.OutDst[sh.OutOff[l]:sh.OutOff[l+1]]
}

// InDegree returns |I(v)|.
func (s *StoreSnapshot) InDegree(v graph.NodeID) int {
	sh, l := s.shardOf(v)
	return int(sh.InOff[l+1] - sh.InOff[l])
}

// OutDegree returns |O(u)|.
func (s *StoreSnapshot) OutDegree(u graph.NodeID) int {
	sh, l := s.shardOf(u)
	return int(sh.OutOff[l+1] - sh.OutOff[l])
}

// ComputeStats scans the snapshot once and returns its degree Stats,
// mirroring (*graph.Snapshot).ComputeStats so /stats can serve structure
// lock-free from the sharded path too.
func (s *StoreSnapshot) ComputeStats() graph.Stats { return graph.ComputeViewStats(s) }

// MemoryBytes reports the resident size of the per-shard CSR arrays plus
// the dense span arrays when they have been materialized.
func (s *StoreSnapshot) MemoryBytes() int64 {
	var b int64
	if sp := s.spans.Load(); sp != nil {
		b += int64(len(sp.in)+len(sp.out)) * 8
	}
	for i := range s.csr {
		sh := &s.csr[i]
		b += int64(len(sh.InOff)+len(sh.OutOff)) * 4
		b += int64(len(sh.InDst)+len(sh.OutDst)) * 4
	}
	return b
}

// Validate checks the composite invariants: shard coverage of [0, n),
// end-offset/degree agreement with every shard's dst array lengths,
// destination ids in global range, and edge counts summing to m. O(n+m),
// intended for tests.
func (s *StoreSnapshot) Validate() error {
	stride := 1 << s.shift
	wantShards := (s.n + stride - 1) / stride
	if len(s.csr) != wantShards {
		return fmt.Errorf("shard: %d shards for %d nodes at stride %d, want %d", len(s.csr), s.n, stride, wantShards)
	}
	var mIn, mOut int64
	sp := s.spanArrays()
	if len(sp.in) != s.n || len(sp.out) != s.n {
		return fmt.Errorf("shard: span arrays of length %d/%d, want %d", len(sp.in), len(sp.out), s.n)
	}
	for p := range s.csr {
		sh := &s.csr[p]
		if s.scoped && len(sh.InOff) == 0 && len(sh.OutOff) == 0 {
			continue // absent shard of a scoped snapshot
		}
		lo := p * stride
		hi := lo + stride
		if hi > s.n {
			hi = s.n
		}
		local := hi - lo
		if len(sh.InOff) != local+1 || len(sh.OutOff) != local+1 {
			return fmt.Errorf("shard %d: offset arrays of length %d/%d, want %d", p, len(sh.InOff), len(sh.OutOff), local+1)
		}
		if sh.InOff[0] != 0 || sh.OutOff[0] != 0 {
			return fmt.Errorf("shard %d: offsets start at %d/%d", p, sh.InOff[0], sh.OutOff[0])
		}
		for v := lo; v < hi; v++ {
			l := v - lo
			if sh.InOff[l] > sh.InOff[l+1] || sh.OutOff[l] > sh.OutOff[l+1] {
				return fmt.Errorf("shard %d: offsets decrease at node %d", p, v)
			}
			if sp.in[v] != graph.PackSpan(sh.InOff[l], sh.InOff[l+1]) ||
				sp.out[v] != graph.PackSpan(sh.OutOff[l], sh.OutOff[l+1]) {
				return fmt.Errorf("shard %d: dense spans disagree with offsets at node %d", p, v)
			}
		}
		if int(sh.InOff[local]) != len(sh.InDst) || int(sh.OutOff[local]) != len(sh.OutDst) {
			return fmt.Errorf("shard %d: dst arrays of length %d/%d, want %d/%d",
				p, len(sh.InDst), len(sh.OutDst), sh.InOff[local], sh.OutOff[local])
		}
		mIn += int64(sh.InOff[local])
		mOut += int64(sh.OutOff[local])
		for _, dst := range [][]graph.NodeID{sh.InDst, sh.OutDst} {
			for _, v := range dst {
				if v < 0 || int(v) >= s.n {
					return fmt.Errorf("shard %d: destination %d out of range [0, %d)", p, v, s.n)
				}
			}
		}
	}
	if !s.scoped && (mIn != s.m || mOut != s.m) {
		return fmt.Errorf("shard: snapshot edge counts in=%d out=%d, want %d", mIn, mOut, s.m)
	}
	return nil
}

// Current returns the most recently published snapshot. It never blocks.
func (st *Store) Current() *StoreSnapshot { return st.cur.Load() }

// PublishedView implements core's SnapshotProvider: the published
// composite snapshot as a versioned view.
func (st *Store) PublishedView() graph.VersionedView { return st.Current() }

// PublishView implements core's SnapshotProvider: republish if stale,
// honoring ctx (see PublishCtx).
func (st *Store) PublishView(ctx context.Context) (graph.VersionedView, error) {
	return st.PublishCtx(ctx)
}

// EnableEagerSpans makes every subsequent publication materialize the new
// snapshot's dense span arrays on a background goroutine instead of
// leaving them to the generation's first query. Publication latency is
// unchanged (the goroutine runs after the atomic store), but a
// latency-sensitive deployment no longer pays the O(n) densification on
// the first query after a batch. The materialization is the same benign
// CAS race as the lazy path, so a query racing the background build at
// worst duplicates it.
func (st *Store) EnableEagerSpans() { st.eagerSpans.Store(true) }

// Publish re-encodes every shard whose mutable side moved since the last
// publication and atomically publishes the new composite snapshot. Cost
// is O(changed shards' nodes+edges + shard count), not O(n+m): untouched
// shards are shared with the previous snapshot by reference. Distinct
// dirty shards rebuild concurrently on a pool bounded by the store's
// worker limit. Publish serializes against mutations and itself; a
// publish with no pending mutations returns the current snapshot
// untouched.
func (st *Store) Publish() *StoreSnapshot {
	snap, _ := st.PublishCtx(context.Background())
	return snap
}

// PublishCtx is Publish with cancellation: the rebuild worker pool
// checkpoints ctx between shard re-encodes, and a canceled publication is
// abandoned before the atomic store — the previously published snapshot
// (returned alongside the error) stays current and the mutable side keeps
// its dirty-shard versions, so the next publication simply redoes the
// work. Cancellation can delay visibility of mutations, never corrupt it.
func (st *Store) PublishCtx(ctx context.Context) (*StoreSnapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	prev := st.cur.Load()
	if prev != nil && prev.version == st.version {
		st.noopPublishes.Add(1)
		return prev, nil
	}
	if err := ctx.Err(); err != nil {
		st.abortedPublishes.Add(1)
		return prev, fmt.Errorf("shard: publication aborted: %w", err)
	}
	next := &StoreSnapshot{
		n:         st.n,
		m:         st.m,
		version:   st.version,
		lastBatch: st.lastBatch,
		shift:     st.part.shift,
		scoped:    st.ownGroup > 1,
		csr:       make([]graph.CSRShard, len(st.shards)),
		versions:  make([]uint64, len(st.shards)),
	}
	dirty := make([]int, 0, len(st.shards))
	for p, sm := range st.shards {
		// A shard outside a scoped store's ownership publishes as absent:
		// only its version rides along, so the staleness/dirtiness
		// signals stay in lockstep with the full stores in the fleet.
		if !st.ownsShard(p) {
			next.versions[p] = sm.version
			continue
		}
		// A shard is clean iff its version matches what the previous
		// snapshot encoded (every mutation that touches a shard, including
		// AddNode growing it, bumps its version).
		if prev != nil && p < len(prev.csr) && prev.versions[p] == sm.version {
			next.csr[p] = prev.csr[p]
			next.versions[p] = prev.versions[p]
			continue
		}
		dirty = append(dirty, p)
	}
	if err := st.rebuild(ctx, next, dirty); err != nil {
		st.abortedPublishes.Add(1)
		return prev, fmt.Errorf("shard: publication aborted: %w", err)
	}
	st.publications.Add(1)
	st.shardsRebuilt.Add(int64(len(dirty)))
	st.shardsReused.Add(int64(len(st.shards) - len(dirty)))
	st.cur.Store(next)
	if prev != nil {
		st.gc.track(prev)
	}
	if st.eagerSpans.Load() {
		go next.spanArrays()
	}
	return next, nil
}

// rebuildParallelThreshold is the total edge count (in + out entries
// across the dirty shards) below which rebuild encodes serially: the
// common small-batch publication touches a handful of shards whose
// re-encode is a few KB of copies, cheaper than any goroutine fan-out.
// Mirrors snapshotParallelThreshold on the monolithic build.
const rebuildParallelThreshold = 1 << 16

// rebuild encodes the dirty shards into next, fanning out across the
// worker pool when there is enough work to amortize it. Workers check ctx
// between shard encodes (one shard is the cancellation granularity); on
// cancellation the partially filled next is abandoned by the caller.
func (st *Store) rebuild(ctx context.Context, next *StoreSnapshot, dirty []int) error {
	workers := st.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirty) {
		workers = len(dirty)
	}
	if workers > 1 {
		// Cheap pre-pass (a len() sum over the dirty shards' lists): skip
		// the fan-out when there is not enough copying to amortize it.
		var work int64
		for _, p := range dirty {
			sm := st.shards[p]
			for l := range sm.in {
				work += int64(len(sm.in[l])) + int64(len(sm.out[l]))
			}
		}
		if work < rebuildParallelThreshold {
			workers = 1
		}
	}
	done := ctx.Done()
	if workers <= 1 {
		for i, p := range dirty {
			// ctx.Err() is a lock per call; only pay it when cancelable
			// and not on the first shard (tiny publishes stay one-shot).
			if done != nil && i > 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			st.encodeShard(next, p)
		}
		return nil
	}
	var idx atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled.Load() {
					return
				}
				if done != nil {
					if err := ctx.Err(); err != nil {
						canceled.Store(true)
						return
					}
				}
				i := int(idx.Add(1)) - 1
				if i >= len(dirty) {
					return
				}
				st.encodeShard(next, dirty[i])
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// encodeShard builds shard p's CSR from its mutable adjacency, preserving
// neighbor order exactly.
func (st *Store) encodeShard(next *StoreSnapshot, p int) {
	sm := st.shards[p]
	local := len(sm.in)
	var mIn, mOut int64
	for l := 0; l < local; l++ {
		mIn += int64(len(sm.in[l]))
		mOut += int64(len(sm.out[l]))
	}
	if mIn > math.MaxUint32 || mOut > math.MaxUint32 {
		panic(fmt.Sprintf("shard: %d/%d edges overflow shard %d's 32-bit offsets", mIn, mOut, p))
	}
	sh := graph.CSRShard{
		InOff:  make([]uint32, local+1),
		OutOff: make([]uint32, local+1),
		InDst:  make([]graph.NodeID, mIn),
		OutDst: make([]graph.NodeID, mOut),
	}
	var inPos, outPos uint32
	for l := 0; l < local; l++ {
		inPos += uint32(copy(sh.InDst[inPos:], sm.in[l]))
		outPos += uint32(copy(sh.OutDst[outPos:], sm.out[l]))
		sh.InOff[l+1] = inPos
		sh.OutOff[l+1] = outPos
	}
	next.csr[p] = sh
	next.versions[p] = sm.version
	st.edgesReEncoded.Add(mIn + mOut)
}
