package shard

import (
	"testing"

	"probesim/internal/graph"
)

func TestApplyBatchAtomicAndIdempotent(t *testing.T) {
	st := NewEmpty(20, 4, 0)
	ops := []EdgeOp{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}
	if _, err := st.ApplyBatch(5, ops); err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != 3 || st.LastBatch() != 5 {
		t.Fatalf("edges=%d batch=%d, want 3/5", st.NumEdges(), st.LastBatch())
	}
	// Retry of a decided id: no mutation, no error, same version.
	v := st.Version()
	if got, err := st.ApplyBatch(5, ops); err != nil || got != v {
		t.Fatalf("retry: version %d err %v, want %d/nil", got, err, v)
	}
	if st.NumEdges() != 3 {
		t.Fatal("retry re-applied the batch")
	}
	// Lower ids are also decided (watermark, not a set).
	if _, err := st.ApplyBatch(2, []EdgeOp{{U: 9, V: 8}}); err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != 3 {
		t.Fatal("stale id mutated the store")
	}
	// id 0 self-assigns the next id.
	if _, err := st.ApplyBatch(0, []EdgeOp{{U: 9, V: 8}}); err != nil {
		t.Fatal(err)
	}
	if st.LastBatch() != 6 || st.NumEdges() != 4 {
		t.Fatalf("self-assign: batch=%d edges=%d, want 6/4", st.LastBatch(), st.NumEdges())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchRollsBackAndStaysDecided(t *testing.T) {
	st := NewEmpty(10, 2, 0)
	if _, err := st.ApplyBatch(1, []EdgeOp{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	// Op 2 fails (removing an absent edge): the applied prefix rolls back.
	bad := []EdgeOp{{U: 3, V: 4}, {Remove: true, U: 7, V: 8}}
	if _, err := st.ApplyBatch(2, bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if st.NumEdges() != 1 {
		t.Fatalf("edges=%d after rollback, want 1", st.NumEdges())
	}
	// The failed batch is DECIDED: replaying it is a no-op, not a second
	// attempt — recovery replays rejected batches without re-rejecting.
	if st.LastBatch() != 2 {
		t.Fatalf("watermark %d, want 2 (rejected batches advance it)", st.LastBatch())
	}
	if _, err := st.ApplyBatch(2, bad); err != nil {
		t.Fatalf("replay of a decided batch errored: %v", err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	// Neighbor order after rollback matches a store that never saw the
	// batch (RemoveEdge's swap-with-tail discipline).
	ref := NewEmpty(10, 2, 0)
	ref.AddEdge(1, 2)
	for v := 0; v < 10; v++ {
		nd := graph.NodeID(v)
		a, b := st.OutNeighbors(nd), ref.OutNeighbors(nd)
		if len(a) != len(b) {
			t.Fatalf("node %d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: %v vs %v", v, a, b)
			}
		}
	}
}

func TestPublishCarriesLastBatch(t *testing.T) {
	st := NewEmpty(16, 4, 0)
	if st.Current().LastBatch() != 0 {
		t.Fatal("fresh snapshot with nonzero watermark")
	}
	st.ApplyBatch(9, []EdgeOp{{U: 0, V: 1}})
	snap := st.Publish()
	if snap.LastBatch() != 9 {
		t.Fatalf("published watermark %d, want 9", snap.LastBatch())
	}
}
