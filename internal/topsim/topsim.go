// Package topsim implements the TopSim family of index-free SimRank
// algorithms (Lee et al., ICDE 2012), the state-of-the-art index-free
// competitors evaluated in the paper (§2.3, §6):
//
//   - TopSim-SM enumerates every reverse walk of the query node up to depth
//     T and, for each, every node that could meet it first at its endpoint.
//     Its estimate sT(u, v) equals the Power Method truncated at T
//     iterations, so with T = 3 (the only affordable setting; the cost is
//     O(d^2T)) the built-in bias is as large as c³·... — c^(T+1)/(1-c) in
//     the worst case.
//   - Trun-TopSim-SM adds two heuristics: reverse walks with probability
//     below η are trimmed, and probes from high out-degree meeting points
//     (out-degree > 1/h) are omitted.
//   - Prio-TopSim-SM expands only the H highest-probability reverse walks
//     at each level (a beam search).
//
// The forward "meeting" expansion reuses the deterministic PROBE traversal
// with per-step factor 1/|I(v)| (√c = 1) and multiplies by c^t once per
// depth, which is exactly the first-meeting semantics of the T-iteration
// Power Method.
package topsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/probe"
)

// ErrBudgetExceeded reports that a query hit Options.Budget before
// completing; partial results are discarded.
var ErrBudgetExceeded = errors.New("topsim: work budget exceeded")

// Variant selects a member of the TopSim family.
type Variant int

const (
	// TopSimSM is the exhaustive variant.
	TopSimSM Variant = iota
	// TrunTopSimSM trims low-probability walks and skips high-degree
	// meeting points.
	TrunTopSimSM
	// PrioTopSimSM keeps only the H most probable walks per level.
	PrioTopSimSM
)

// String returns the name used in the paper's figures.
func (v Variant) String() string {
	switch v {
	case TopSimSM:
		return "TopSim-SM"
	case TrunTopSimSM:
		return "Trun-TopSim-SM"
	case PrioTopSimSM:
		return "Prio-TopSim-SM"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures a TopSim query. Defaults follow §6.1: T = 3,
// 1/h = 100, η = 0.001, H = 100.
type Options struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// T is the reverse-walk depth. Default 3.
	T int
	// Variant selects the family member. Default TopSimSM.
	Variant Variant
	// InvH is 1/h, the out-degree above which Trun-TopSim-SM skips a
	// meeting point. Default 100.
	InvH int
	// Eta is Trun-TopSim-SM's walk-probability trim threshold η.
	// Default 0.001.
	Eta float64
	// H is Prio-TopSim-SM's per-level beam width. Default 100.
	H int
	// Budget caps the total edge traversals of a query (reverse-walk
	// expansion plus probe work); 0 means unlimited. When exceeded the
	// query aborts with ErrBudgetExceeded — the harness's analogue of the
	// paper's ">24 hours" exclusions on dense graphs.
	Budget int64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.T == 0 {
		o.T = 3
	}
	if o.InvH == 0 {
		o.InvH = 100
	}
	if o.Eta == 0 {
		o.Eta = 0.001
	}
	if o.H == 0 {
		o.H = 100
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("topsim: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.T < 1 {
		return fmt.Errorf("topsim: depth T = %d < 1", o.T)
	}
	if o.Variant < TopSimSM || o.Variant > PrioTopSimSM {
		return fmt.Errorf("topsim: unknown variant %d", int(o.Variant))
	}
	return nil
}

// SingleSource returns sT(u, v) for every node v: the T-iteration Power
// Method approximation of s(u, v), possibly degraded by the variant's
// heuristics. The query node's entry is 1.
func SingleSource(g *graph.Graph, u graph.NodeID, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("topsim: query node %d out of range [0, %d)", u, n)
	}
	acc := make([]float64, n)
	s := probe.NewScratch(n)
	var err error
	if opt.Variant == PrioTopSimSM {
		err = prioTopSim(g, u, opt, acc, s)
	} else {
		path := make([]graph.NodeID, 1, opt.T+1)
		path[0] = u
		err = dfsTopSim(g, opt, path, 1.0, acc, s)
	}
	if err != nil {
		return nil, err
	}
	acc[u] = 1
	return acc, nil
}

// overBudget reports whether the accumulated probe work exceeds the
// configured budget.
func overBudget(opt Options, s *probe.Scratch) bool {
	return opt.Budget > 0 && s.Work > opt.Budget
}

// TopK returns the k nodes with the largest sT(u, v), under the shared
// ranking semantics of core.SelectTopK.
func TopK(g *graph.Graph, u graph.NodeID, k int, opt Options) ([]core.ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topsim: top-k requires k >= 1, got %d", k)
	}
	est, err := SingleSource(g, u, opt)
	if err != nil {
		return nil, err
	}
	return core.SelectTopK(est, u, k), nil
}

// dfsTopSim enumerates reverse walks of u depth-first. For the current
// walk (path, probability prob) it adds the contribution of pairs meeting
// first at the walk's endpoint, then recurses one level deeper.
func dfsTopSim(g *graph.Graph, opt Options, path []graph.NodeID, prob float64, acc []float64, s *probe.Scratch) error {
	t := len(path) - 1
	if t >= 1 {
		probeMeetingPoint(g, opt, path, prob, acc, s)
		if overBudget(opt, s) {
			return ErrBudgetExceeded
		}
	}
	if t >= opt.T {
		return nil
	}
	in := g.InNeighbors(path[t])
	if len(in) == 0 {
		return nil
	}
	s.Work += int64(len(in))
	p := prob / float64(len(in))
	if opt.Variant == TrunTopSimSM && p < opt.Eta {
		// η-trim: walks this unlikely are dropped wholesale.
		return nil
	}
	for _, x := range in {
		if err := dfsTopSim(g, opt, append(path, x), p, acc, s); err != nil {
			return err
		}
	}
	return nil
}

// probeMeetingPoint adds prob·c^t·P(v meets path first at its endpoint) for
// every candidate v, using the PROBE traversal with no per-step decay.
func probeMeetingPoint(g *graph.Graph, opt Options, path []graph.NodeID, prob float64, acc []float64, s *probe.Scratch) {
	t := len(path) - 1
	w := path[t]
	if opt.Variant == TrunTopSimSM && g.OutDegree(w) > opt.InvH {
		return // high-degree meeting point omitted
	}
	res := probe.Deterministic(g, path, 1.0, 0, s)
	scale := prob * math.Pow(opt.C, float64(t))
	for _, v := range res.Nodes {
		acc[v] += scale * res.Scores[v]
	}
}

// prioTopSim is the beam-search variant: level-synchronous expansion
// keeping at most H walks per level, ordered by walk probability.
func prioTopSim(g *graph.Graph, u graph.NodeID, opt Options, acc []float64, s *probe.Scratch) error {
	type beamWalk struct {
		path []graph.NodeID
		prob float64
	}
	level := []beamWalk{{path: []graph.NodeID{u}, prob: 1}}
	for t := 1; t <= opt.T; t++ {
		var next []beamWalk
		for _, bw := range level {
			in := g.InNeighbors(bw.path[len(bw.path)-1])
			if len(in) == 0 {
				continue
			}
			s.Work += int64(len(in))
			p := bw.prob / float64(len(in))
			for _, x := range in {
				path := append(append([]graph.NodeID(nil), bw.path...), x)
				next = append(next, beamWalk{path: path, prob: p})
			}
		}
		// Keep the H most probable walks; ties resolve by endpoint id so
		// results are deterministic.
		sort.Slice(next, func(i, j int) bool {
			if next[i].prob != next[j].prob {
				return next[i].prob > next[j].prob
			}
			return next[i].path[len(next[i].path)-1] < next[j].path[len(next[j].path)-1]
		})
		if len(next) > opt.H {
			next = next[:opt.H]
		}
		for _, bw := range next {
			probeMeetingPoint(g, opt, bw.path, bw.prob, acc, s)
			if overBudget(opt, s) {
				return ErrBudgetExceeded
			}
		}
		level = next
		if len(level) == 0 {
			break
		}
	}
	return nil
}
