package topsim

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

// TopSim-SM's estimate is by construction the T-iteration Power Method
// value; verify exact agreement on the toy graph and random graphs.
func TestTopSimMatchesTruncatedPowerMethod(t *testing.T) {
	graphs := []*graph.Graph{graph.Toy()}
	rng := xrand.New(17)
	graphs = append(graphs, randomGraph(rng, 25, 70), randomGraph(rng, 30, 150))
	for gi, g := range graphs {
		for _, T := range []int{1, 3, 6} {
			m, err := power.SimRank(g, power.Options{C: 0.6, Iterations: T})
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range []graph.NodeID{0, graph.NodeID(g.NumNodes() / 2)} {
				est, err := SingleSource(g, u, Options{C: 0.6, T: T})
				if err != nil {
					t.Fatal(err)
				}
				for v := range est {
					if d := math.Abs(est[v] - m.At(u, graph.NodeID(v))); d > 1e-10 {
						t.Fatalf("graph %d T=%d: sT(%d,%d) = %v, power = %v",
							gi, T, u, v, est[v], m.At(u, graph.NodeID(v)))
					}
				}
			}
		}
	}
}

// With T large enough, TopSim-SM converges to the exact SimRank (the c^T
// tail vanishes); with T = 3 the error can approach the c³-scale bias the
// paper warns about.
func TestDepthBias(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	worstAt := func(T int) float64 {
		est, err := SingleSource(g, graph.ToyA, Options{C: 0.6, T: T})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := range est {
			if d := math.Abs(est[v] - exact[v]); d > worst {
				worst = d
			}
		}
		return worst
	}
	e3, e12 := worstAt(3), worstAt(12)
	if e12 > 1e-3 {
		t.Fatalf("T=12 error %v too large", e12)
	}
	if e3 <= e12 {
		t.Fatalf("deeper walks must help: e3=%v e12=%v", e3, e12)
	}
	if e3 > math.Pow(0.6, 4)/(1-0.6) {
		t.Fatalf("T=3 error %v exceeds the c^(T+1)/(1-c) tail bound", e3)
	}
}

// Both Trun heuristics only drop contributions, so Trun-TopSim-SM is a
// one-sided under-estimate of TopSim-SM.
func TestTrunOneSided(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 40, 240)
		u := rng.Int31n(40)
		full, err := SingleSource(g, u, Options{T: 3})
		if err != nil {
			t.Fatal(err)
		}
		trun, err := SingleSource(g, u, Options{T: 3, Variant: TrunTopSimSM, InvH: 5, Eta: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		for v := range full {
			if trun[v] > full[v]+1e-12 {
				t.Fatalf("Trun estimate exceeds TopSim at node %d: %v > %v", v, trun[v], full[v])
			}
		}
	}
}

// A beam wide enough to hold every reverse walk makes Prio identical to
// TopSim-SM.
func TestPrioWideBeamMatchesTopSim(t *testing.T) {
	rng := xrand.New(29)
	g := randomGraph(rng, 25, 100)
	u := graph.NodeID(3)
	full, err := SingleSource(g, u, Options{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := SingleSource(g, u, Options{T: 3, Variant: PrioTopSimSM, H: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for v := range full {
		if math.Abs(full[v]-prio[v]) > 1e-10 {
			t.Fatalf("wide-beam Prio differs at %d: %v vs %v", v, prio[v], full[v])
		}
	}
}

// A narrow beam drops walks, so Prio under-estimates TopSim-SM.
func TestPrioNarrowBeamOneSided(t *testing.T) {
	rng := xrand.New(31)
	g := randomGraph(rng, 40, 240)
	u := rng.Int31n(40)
	full, err := SingleSource(g, u, Options{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := SingleSource(g, u, Options{T: 3, Variant: PrioTopSimSM, H: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range full {
		if prio[v] > full[v]+1e-12 {
			t.Fatalf("narrow-beam Prio exceeds TopSim at %d", v)
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.Toy()
	if _, err := SingleSource(g, 0, Options{C: 1.2}); err == nil {
		t.Error("bad c accepted")
	}
	if _, err := SingleSource(g, 0, Options{T: -1}); err == nil {
		t.Error("negative T accepted")
	}
	if _, err := SingleSource(g, 0, Options{Variant: Variant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := SingleSource(g, 42, Options{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := TopK(g, 0, 0, Options{}); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestTopKAgainstTable2(t *testing.T) {
	g := graph.Toy()
	res, err := TopK(g, graph.ToyA, 2, Options{C: 0.25, T: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: the top-2 are d (0.131) and e (0.070).
	if res[0].Node != graph.ToyD || res[1].Node != graph.ToyE {
		t.Fatalf("top-2 = %v, want d, e", res)
	}
}

func TestDeterminism(t *testing.T) {
	rng := xrand.New(37)
	g := randomGraph(rng, 40, 200)
	for _, variant := range []Variant{TopSimSM, TrunTopSimSM, PrioTopSimSM} {
		opt := Options{Variant: variant, T: 3, H: 10}
		a, err := SingleSource(g, 7, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SingleSource(g, 7, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("variant %v not deterministic", variant)
			}
		}
	}
}

func TestVariantStrings(t *testing.T) {
	names := map[string]bool{}
	for _, v := range []Variant{TopSimSM, TrunTopSimSM, PrioTopSimSM} {
		s := v.String()
		if s == "" || names[s] {
			t.Fatalf("bad variant name %q", s)
		}
		names[s] = true
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}
