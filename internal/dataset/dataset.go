// Package dataset names the synthetic stand-ins for the eight benchmark
// graphs of Table 3. Real SNAP/LAW downloads are unavailable offline, so
// each stand-in is a seeded generator chosen to match the original's type
// (directed/undirected) and degree character (power-law social graph,
// locally dense microblog graph, locally sparse web graph, zero-in-degree-
// heavy voting graph), at a scale where the full experiment suite runs on
// one machine:
//
//   - "small" graphs are sized so the Power Method ground truth (Θ(n²)
//     space, Θ(k·n·m) time) stays tractable, exactly the constraint that
//     made the paper's §6.1 use small graphs;
//   - "large" graphs are sized so TSF's index (Rg·n parent entries plus
//     children lists) exhibits its 1-2 orders-of-magnitude space blow-up
//     without exhausting laptop memory.
//
// Scale factors relative to the paper are recorded per dataset and printed
// by the Table 3 experiment.
package dataset

import (
	"fmt"
	"sort"

	"probesim/internal/gen"
	"probesim/internal/graph"
)

// Spec describes one dataset stand-in.
type Spec struct {
	// Name is the stand-in's identifier (paper name + "-s" for "scaled").
	Name string
	// PaperName, PaperNodes, PaperEdges echo Table 3.
	PaperName  string
	PaperNodes int64
	PaperEdges int64
	// Directed records the original's type (undirected graphs are stored
	// with both edge directions, as SimRank implementations conventionally
	// do).
	Directed bool
	// Small marks the graphs whose ground truth comes from the Power
	// Method (§6.1); large graphs are evaluated by pooling (§6.2).
	Small bool
	// Character is the one-line structural rationale for the generator.
	Character string
	// Build generates the stand-in.
	Build func(seed uint64) *graph.Graph
}

// registry lists the stand-ins in Table 3 order.
var registry = []Spec{
	{
		Name: "wiki-vote-s", PaperName: "Wiki-Vote", PaperNodes: 7115, PaperEdges: 103689,
		Directed: true, Small: true,
		Character: "voting graph: >60% zero in-degree periphery over a dense core (§6.1)",
		Build: func(seed uint64) *graph.Graph {
			// 1/3.5 scale: 2040 nodes (740 core + 1300 periphery), ~29.6k edges.
			return gen.CorePeriphery(740, 1300, 22000, 6, seed)
		},
	},
	{
		Name: "hepth-s", PaperName: "HepTh", PaperNodes: 9877, PaperEdges: 25998,
		Directed: false, Small: true,
		Character: "undirected collaboration network, low average degree",
		Build: func(seed uint64) *graph.Graph {
			// 1/5 scale: 1975 nodes, ~5.2k undirected edges (both directions stored).
			return gen.UndirectedPA(1975, 3, seed)
		},
	},
	{
		Name: "as-s", PaperName: "AS", PaperNodes: 26475, PaperEdges: 106762,
		Directed: true, Small: true,
		Character: "internet topology: heavy-tailed, near-symmetric peering links",
		Build: func(seed uint64) *graph.Graph {
			// 1/12 scale: 2206 nodes, ~8.8k links stored in both directions
			// (AS adjacencies are bidirectional peering/transit links).
			return gen.UndirectedPA(2206, 4, seed)
		},
	},
	{
		Name: "hepph-s", PaperName: "HepPh", PaperNodes: 34546, PaperEdges: 421578,
		Directed: true, Small: true,
		Character: "citation network: directed, dense (avg degree ~12)",
		Build: func(seed uint64) *graph.Graph {
			// 1/17 scale: 2030 nodes, ~24.3k edges.
			return gen.PreferentialAttachment(2030, 12, seed)
		},
	},
	{
		Name: "livejournal-s", PaperName: "LiveJournal", PaperNodes: 4847571, PaperEdges: 68993773,
		Directed: true, Small: false,
		Character: "social network: power-law, ~30% mutual links",
		Build: func(seed uint64) *graph.Graph {
			// 1/60 scale: 80k nodes, ~1.4M edges after reciprocation
			// (LiveJournal friendships are frequently mutual).
			g := gen.PreferentialAttachment(80000, 14, seed)
			gen.Reciprocate(g, 0.3, seed+1)
			return g
		},
	},
	{
		Name: "it2004-s", PaperName: "IT-2004", PaperNodes: 41291594, PaperEdges: 1150725436,
		Directed: true, Small: false,
		Character: "web graph: locally sparse, strong community structure (R-MAT, mild skew)",
		Build: func(seed uint64) *graph.Graph {
			// 1/400 scale: 2^17 = 131k nodes, ~2.5M edges.
			return gen.RMAT(17, 2500000, 0.45, 0.22, 0.22, 0.11, seed)
		},
	},
	{
		Name: "twitter-s", PaperName: "Twitter", PaperNodes: 41652230, PaperEdges: 1468365182,
		Directed: true, Small: false,
		Character: "microblog graph: locally dense hubs (R-MAT, strong skew)",
		Build: func(seed uint64) *graph.Graph {
			// 1/640 scale: 2^16 = 65k nodes, ~2.3M edges (avg degree ~35 like Twitter).
			return gen.RMAT(16, 2300000, 0.57, 0.19, 0.19, 0.05, seed)
		},
	},
	{
		Name: "friendster-s", PaperName: "Friendster", PaperNodes: 68349466, PaperEdges: 2586147869,
		Directed: true, Small: false,
		Character: "social network: the largest graph, power-law, ~30% mutual links",
		Build: func(seed uint64) *graph.Graph {
			// 1/560 scale: 122k nodes, ~3M edges after reciprocation.
			g := gen.PreferentialAttachment(122000, 19, seed)
			gen.Reciprocate(g, 0.3, seed+1)
			return g
		},
	},
}

// All returns every dataset spec in Table 3 order.
func All() []Spec { return append([]Spec(nil), registry...) }

// Small returns the four small (ground-truth-by-Power-Method) datasets.
func Small() []Spec { return filter(true) }

// Large returns the four large (pooling-evaluated) datasets.
func Large() []Spec { return filter(false) }

func filter(small bool) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Small == small {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a dataset up by stand-in name or paper name
// (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name || s.PaperName == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, names)
}

// ScaleFactor returns the approximate node scale-down versus the paper's
// graph, for reporting.
func (s Spec) ScaleFactor(g *graph.Graph) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(s.PaperNodes) / float64(g.NumNodes())
}
