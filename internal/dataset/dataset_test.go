package dataset

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d datasets, want the 8 of Table 3", len(all))
	}
	if len(Small()) != 4 || len(Large()) != 4 {
		t.Fatalf("small/large split wrong: %d/%d", len(Small()), len(Large()))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.PaperName == "" || s.Build == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate dataset %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("wiki-vote-s"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("Twitter"); err != nil {
		t.Fatal("paper names must resolve")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Small datasets must stay within Power-Method reach and match their
// declared character.
func TestSmallDatasetShapes(t *testing.T) {
	for _, spec := range Small() {
		g := spec.Build(1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.NumNodes() > 4000 {
			t.Errorf("%s: %d nodes too large for the Power Method oracle", spec.Name, g.NumNodes())
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", spec.Name)
		}
		if spec.ScaleFactor(g) < 1 {
			t.Errorf("%s: stand-in larger than the original?", spec.Name)
		}
	}
}

func TestWikiVoteCharacter(t *testing.T) {
	spec, err := ByName("wiki-vote-s")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(1)
	stats := g.ComputeStats()
	if frac := float64(stats.ZeroInDeg) / float64(stats.Nodes); frac < 0.6 {
		t.Fatalf("wiki-vote-s zero-in-degree share %.2f, want >= 0.6 (§6.1)", frac)
	}
}

func TestHepThUndirected(t *testing.T) {
	spec, err := ByName("hepth-s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Directed {
		t.Fatal("HepTh is undirected in Table 3")
	}
	g := spec.Build(1)
	if g.NumEdges()%2 != 0 {
		t.Fatal("undirected stand-in must store both directions")
	}
}

func TestBuildsAreSeeded(t *testing.T) {
	spec, err := ByName("as-s")
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Build(5), spec.Build(5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	c := spec.Build(6)
	_ = c // different seed may coincide in edge count; just ensure it builds
}

// Large dataset shapes: sized for pooling experiments, with enough edges to
// exercise the scalability claims but small enough for one machine.
func TestLargeDatasetShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large dataset generation in -short mode")
	}
	for _, spec := range Large() {
		g := spec.Build(1)
		if g.NumNodes() < 50000 {
			t.Errorf("%s: only %d nodes", spec.Name, g.NumNodes())
		}
		if g.NumEdges() < 1000000 {
			t.Errorf("%s: only %d edges", spec.Name, g.NumEdges())
		}
		if spec.ScaleFactor(g) < 10 {
			t.Errorf("%s: scale factor %.0f suspiciously small", spec.Name, spec.ScaleFactor(g))
		}
	}
}
