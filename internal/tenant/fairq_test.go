package tenant

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTenant(name string, c Class) *Tenant {
	return &Tenant{Name: name, Class: c, Config: Defaults(c)}
}

func TestFairQueueFastPath(t *testing.T) {
	q := NewFairQueue(2)
	ten := newTenant("a", DegradeTolerant)
	r1, err := q.Acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Acquire(context.Background(), ten)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Queued.Load() != 0 {
		t.Fatal("uncontended acquires queued")
	}
	r1()
	r1() // release is idempotent
	r2()
	if q.QueuedLen() != 0 {
		t.Fatal("waiters left behind")
	}
}

func TestFairQueueOwnQueueFull(t *testing.T) {
	q := NewFairQueue(1)
	a := newTenant("a", LatencyStrict) // queue depth 8
	rel, err := q.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Fill a's queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < a.Config.QueueDepth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := q.Acquire(ctx, a); err == nil {
				r()
			}
		}()
	}
	waitFor(t, func() bool { return q.TenantQueuedLen(a) == a.Config.QueueDepth })
	if _, err := q.Acquire(context.Background(), a); err != ErrQueueFull {
		t.Fatalf("over-depth acquire: %v, want ErrQueueFull", err)
	}
	// Another tenant's queue is NOT full: it queues rather than rejects.
	b := newTenant("b", ThroughputBatch)
	done := make(chan error, 1)
	go func() {
		r, err := q.Acquire(ctx, b)
		if err == nil {
			r()
		}
		done <- err
	}()
	waitFor(t, func() bool { return q.TenantQueuedLen(b) == 1 })
	rel() // drain: every waiter runs and releases in turn
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	if q.QueuedLen() != 0 {
		t.Fatal("waiters left behind")
	}
}

func TestFairQueueContextExpiryWhileQueued(t *testing.T) {
	q := NewFairQueue(1)
	a := newTenant("a", DegradeTolerant)
	rel, err := q.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Acquire(ctx, a); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire past deadline: %v", err)
	}
	if q.TenantQueuedLen(a) != 0 {
		t.Fatal("expired waiter not removed")
	}
	rel()
	// The abandoned waiter must not have consumed the slot.
	r2, err := q.Acquire(context.Background(), a)
	if err != nil {
		t.Fatalf("slot leaked to an expired waiter: %v", err)
	}
	r2()
}

// TestFairQueueWeightedShare drains a contended queue completely: no
// grant is lost and no waiter is stranded regardless of weight skew.
func TestFairQueueWeightedShare(t *testing.T) {
	q := NewFairQueue(1)
	heavy := newTenant("strict", DegradeTolerant)
	heavy.Config.Weight, heavy.Config.QueueDepth = 4, 64
	light := newTenant("batch", DegradeTolerant)
	light.Config.Weight, light.Config.QueueDepth = 1, 64

	blocker, err := q.Acquire(context.Background(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	var heavyGrants, lightGrants atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	const perTenant = 40
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if r, err := q.Acquire(ctx, heavy); err == nil {
				heavyGrants.Add(1)
				r()
			}
		}()
		go func() {
			defer wg.Done()
			if r, err := q.Acquire(ctx, light); err == nil {
				lightGrants.Add(1)
				r()
			}
		}()
	}
	waitFor(t, func() bool { return q.QueuedLen() == 2*perTenant })
	blocker()
	wg.Wait()
	if heavyGrants.Load() != perTenant || lightGrants.Load() != perTenant {
		t.Fatalf("grants lost: heavy %d light %d", heavyGrants.Load(), lightGrants.Load())
	}
}

// TestFairQueueStrictNotStarved: a saturating batch tenant keeps the
// server full, and a latency-strict arrival still gets a slot within a
// bounded number of releases (one ring rotation), not after the whole
// backlog.
func TestFairQueueStrictNotStarved(t *testing.T) {
	q := NewFairQueue(1)
	batch := newTenant("batch", ThroughputBatch)
	batch.Config.QueueDepth = 64
	strict := newTenant("strict", LatencyStrict)

	rel, err := q.Acquire(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	const backlog = 32
	batchDone := make(chan struct{}, backlog)
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := q.Acquire(ctx, batch); err == nil {
				batchDone <- struct{}{}
				r()
			}
		}()
	}
	waitFor(t, func() bool { return q.TenantQueuedLen(batch) == backlog })

	strictGranted := make(chan struct{})
	var aheadOfStrict atomic.Int64
	go func() {
		r, err := q.Acquire(ctx, strict)
		if err != nil {
			t.Errorf("strict acquire: %v", err)
			close(strictGranted)
			return
		}
		// Count while still holding the slot: with capacity 1, every batch
		// grant that preceded this one has already sent to batchDone (send
		// happens before its release, which happens before this grant),
		// and none can land after until r(). Reading from the main
		// goroutine instead would race the post-strict drain.
		aheadOfStrict.Store(int64(len(batchDone)))
		close(strictGranted)
		r()
	}()
	waitFor(t, func() bool { return q.TenantQueuedLen(strict) == 1 })

	rel() // start the drain
	<-strictGranted
	// The strict tenant must have been granted near the front: DRR bounds
	// its wait to one quantum of the batch tenant (weight 1), i.e. a
	// single batch grant between the blocker's release and the strict
	// grant.
	if n := aheadOfStrict.Load(); n > 1 {
		t.Fatalf("strict tenant waited behind %d of %d batch queries", n, backlog)
	}
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
