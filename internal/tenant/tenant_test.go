package tenant

import (
	"fmt"
	"testing"
	"time"
)

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range []Class{LatencyStrict, ThroughputBatch, DegradeTolerant} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("gold"); err == nil {
		t.Fatal("unknown class parsed")
	}
}

func TestClassDefaults(t *testing.T) {
	if d := Defaults(LatencyStrict); d.AllowDegrade || d.Weight <= Defaults(ThroughputBatch).Weight {
		t.Fatalf("latency-strict defaults: %+v", d)
	}
	if d := Defaults(ThroughputBatch); !d.AllowDegrade {
		t.Fatalf("throughput-batch defaults: %+v", d)
	}
	if d := Defaults(DegradeTolerant); !d.AllowDegrade {
		t.Fatalf("degrade-tolerant defaults: %+v", d)
	}
}

func TestRegistryResolve(t *testing.T) {
	r := NewRegistry(DegradeTolerant, nil)
	r.Configure("search", LatencyStrict)

	if ten := r.Resolve(""); ten.Name != DefaultName || ten.Class != DegradeTolerant {
		t.Fatalf("headerless request resolved to %+v", ten)
	}
	if ten := r.Resolve("search"); ten.Class != LatencyStrict {
		t.Fatalf("configured tenant lost its class: %+v", ten)
	}
	// Unknown tenants are admitted with the default class and keep their
	// identity across requests.
	a := r.Resolve("crawler")
	b := r.Resolve("crawler")
	if a != b || a.Class != DegradeTolerant {
		t.Fatalf("unknown tenant not stable: %p %p %v", a, b, a.Class)
	}
}

func TestRegistryBoundsCardinality(t *testing.T) {
	r := NewRegistry(DegradeTolerant, nil)
	for i := 0; i < MaxTenants+20; i++ {
		r.Resolve(fmt.Sprintf("hostile-%d", i))
	}
	if n := len(r.All()); n > MaxTenants {
		t.Fatalf("registry grew to %d tenants, cap %d", n, MaxTenants)
	}
	over := r.Resolve("hostile-unseen")
	if over.Name != OverflowName {
		t.Fatalf("past the cap, got tenant %q, want overflow", over.Name)
	}
}

func TestRegistryClassOverrides(t *testing.T) {
	r := NewRegistry(DegradeTolerant, map[Class]Config{
		LatencyStrict: {Weight: 9, QueueDepth: 3, BudgetCap: 50 * time.Millisecond},
	})
	r.Configure("search", LatencyStrict)
	ten := r.Resolve("search")
	if ten.Config.Weight != 9 || ten.Config.QueueDepth != 3 || ten.Config.BudgetCap != 50*time.Millisecond {
		t.Fatalf("override lost: %+v", ten.Config)
	}
	if ten.Config.AllowDegrade {
		t.Fatal("override enabled degrade for latency-strict")
	}
}

func TestParseSpec(t *testing.T) {
	r := NewRegistry(DegradeTolerant, nil)
	if err := ParseSpec(r, "search=latency-strict, crawl=throughput-batch"); err != nil {
		t.Fatal(err)
	}
	if r.Resolve("search").Class != LatencyStrict || r.Resolve("crawl").Class != ThroughputBatch {
		t.Fatal("spec classes not applied")
	}
	if err := ParseSpec(r, "bad"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if err := ParseSpec(r, "x=gold"); err == nil {
		t.Fatal("unknown class accepted")
	}
	if err := ParseSpec(r, ""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
