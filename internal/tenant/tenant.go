// Package tenant provides the multi-tenant QoS identity layer for the
// serving stack: who a request belongs to (the X-ProbeSim-Tenant
// header), what service class that tenant bought (latency-strict,
// throughput-batch, degrade-tolerant), and the per-tenant counters the
// SLO plane reports. The companion FairQueue (fairq.go) turns class
// weights into deficit-weighted admission so one tenant's burst cannot
// starve another's latency budget.
package tenant

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the request header carrying the tenant name. Requests
// without it belong to DefaultName.
const Header = "X-ProbeSim-Tenant"

// MaxEpsaHeader lets a request refuse degradation beyond a stated εa:
// if admission would degrade the query past this bound, the server
// answers 503 instead of silently serving the wider εa. A value below
// the configured base εa is unsatisfiable and rejected as a client
// error.
const MaxEpsaHeader = "X-ProbeSim-Max-Epsa"

// DefaultName is the tenant requests without a header resolve to.
const DefaultName = "default"

// Class is a tenant's service class; it selects the admission policy
// defaults (weight, queue depth, degrade acceptability, budget cap).
type Class int

const (
	// LatencyStrict tenants pay for tail latency: high fair-queue
	// weight, a short wait queue (better a fast 503 than a slow answer),
	// and no silent degradation — their answers are always full accuracy.
	LatencyStrict Class = iota
	// ThroughputBatch tenants pay for volume: low weight, a deep queue,
	// degradation accepted. They soak up slack capacity without
	// displacing latency-strict traffic.
	ThroughputBatch
	// DegradeTolerant is the pre-tenant default: medium weight and
	// queue, degradation accepted — exactly PR 4's behavior, so
	// headerless traffic is served the way it always was.
	DegradeTolerant
)

func (c Class) String() string {
	switch c {
	case LatencyStrict:
		return "latency-strict"
	case ThroughputBatch:
		return "throughput-batch"
	case DegradeTolerant:
		return "degrade-tolerant"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass parses the flag/config spelling of a class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "latency-strict":
		return LatencyStrict, nil
	case "throughput-batch":
		return ThroughputBatch, nil
	case "degrade-tolerant":
		return DegradeTolerant, nil
	}
	return 0, fmt.Errorf("tenant: unknown class %q (want latency-strict, throughput-batch or degrade-tolerant)", s)
}

// Config is one class's admission policy. Zero fields take the class
// defaults from Defaults.
type Config struct {
	// Weight is the deficit-round-robin quantum: a tenant with weight 4
	// is granted 4 slots for every 1 a weight-1 tenant gets while both
	// have waiters.
	Weight int
	// QueueDepth bounds the tenant's wait queue; a request arriving with
	// the queue full is the ONLY case that 503s under fair queueing.
	QueueDepth int
	// AllowDegrade says whether the soft-watermark degrade path (wider
	// εa under pressure) is acceptable for this class. When false the
	// tenant is always served at full accuracy — it paid for the bound.
	AllowDegrade bool
	// BudgetCap, when set, caps the per-request deadline below the
	// server-wide QueryTimeout: a batch tenant can be held to a tighter
	// work budget than interactive traffic.
	BudgetCap time.Duration
}

// Defaults returns the built-in policy for a class.
func Defaults(c Class) Config {
	switch c {
	case LatencyStrict:
		return Config{Weight: 4, QueueDepth: 8, AllowDegrade: false}
	case ThroughputBatch:
		return Config{Weight: 1, QueueDepth: 32, AllowDegrade: true}
	default:
		return Config{Weight: 2, QueueDepth: 16, AllowDegrade: true}
	}
}

// Tenant is one tenant's live state: its resolved policy and the
// counters the SLO plane exports. All counter fields are atomics;
// Tenant values are shared freely across requests.
type Tenant struct {
	Name   string
	Class  Class
	Config Config

	Inflight       atomic.Int64 // queries executing now
	Admitted       atomic.Int64 // queries granted a slot (incl. after queueing)
	Queued         atomic.Int64 // queries that waited in the fair queue
	Rejected       atomic.Int64 // 503s from a full tenant queue (or hard limit)
	Degraded       atomic.Int64 // queries served at widened εa
	DegradeRefused atomic.Int64 // 503s because Max-Epsa forbade the degrade
}

// MaxTenants bounds distinct tenant label values: a client minting a
// fresh tenant name per request must not grow /metrics without bound.
// Past the cap, unknown names resolve to the shared overflow tenant.
const MaxTenants = 64

// OverflowName is the shared tenant unknown names collapse into once
// MaxTenants distinct names have been seen.
const OverflowName = "_overflow"

// Registry resolves header values to tenants. Configured tenants are
// installed up front; unknown names are admitted on first sight with
// the default class until MaxTenants is reached.
type Registry struct {
	mu       sync.Mutex
	tenants  map[string]*Tenant
	defClass Class
	classes  map[Class]Config
}

// NewRegistry builds a registry. classes overrides per-class policy
// (nil entries take Defaults); defClass is the class unknown and
// headerless tenants get.
func NewRegistry(defClass Class, classes map[Class]Config) *Registry {
	r := &Registry{
		tenants:  make(map[string]*Tenant),
		defClass: defClass,
		classes:  make(map[Class]Config),
	}
	for _, c := range []Class{LatencyStrict, ThroughputBatch, DegradeTolerant} {
		cfg := Defaults(c)
		if over, ok := classes[c]; ok {
			if over.Weight > 0 {
				cfg.Weight = over.Weight
			}
			if over.QueueDepth > 0 {
				cfg.QueueDepth = over.QueueDepth
			}
			if over.BudgetCap > 0 {
				cfg.BudgetCap = over.BudgetCap
			}
			cfg.AllowDegrade = over.AllowDegrade
		}
		r.classes[c] = cfg
	}
	// The default and overflow tenants always exist, so Resolve can
	// never fail and the overflow bucket is visible on /metrics from the
	// start rather than appearing mid-incident.
	r.add(DefaultName, defClass)
	r.add(OverflowName, defClass)
	return r
}

func (r *Registry) add(name string, c Class) *Tenant {
	t := &Tenant{Name: name, Class: c, Config: r.classes[c]}
	r.tenants[name] = t
	return t
}

// Configure installs a named tenant with an explicit class. Call before
// serving (it is synchronized, but a tenant's class is fixed once
// requests resolve it).
func (r *Registry) Configure(name string, c Class) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.add(name, c)
}

// Resolve maps a header value to its tenant: "" to the default tenant,
// configured names to their tenant, unknown names to a fresh
// default-class tenant until MaxTenants, then to the overflow tenant.
func (r *Registry) Resolve(name string) *Tenant {
	if name == "" {
		name = DefaultName
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[name]; ok {
		return t
	}
	if len(r.tenants) >= MaxTenants {
		return r.tenants[OverflowName]
	}
	return r.add(name, r.defClass)
}

// All returns every known tenant sorted by name — the stable order
// /metrics and /debug/slo render in.
func (r *Registry) All() []*Tenant {
	r.mu.Lock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseSpec parses the -tenants flag grammar:
//
//	name=class[,name=class...]
//
// e.g. "search=latency-strict,crawl=throughput-batch". An empty spec
// yields no configured tenants (every name resolves to the default
// class).
func ParseSpec(r *Registry, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, cls, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return fmt.Errorf("tenant: bad spec entry %q (want name=class)", part)
		}
		c, err := ParseClass(cls)
		if err != nil {
			return err
		}
		r.Configure(name, c)
	}
	return nil
}
