package tenant

// Deficit-weighted fair admission. The queue guards a fixed number of
// execution slots (the server's MaxInflight). While slots are free and
// nobody waits, Acquire is a mutex-protected counter bump — the
// uncontended fast path. Once slots run out, each tenant gets a small
// bounded FIFO of waiters and a place in a round-robin ring; every
// released slot runs one step of deficit round robin (quantum = the
// tenant's weight, unit cost per query), so over any contention window
// tenants are granted slots in proportion to their weights. A
// throughput-batch tenant with a deep queue can saturate the server all
// day and a latency-strict tenant's queries still reach the front
// within one ring rotation. The ONLY overload answer a tenant sees is
// its own queue filling (ErrQueueFull -> 503 + Retry-After); another
// tenant's backlog never rejects it.

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull reports that the acquiring tenant's own wait queue is at
// capacity — the fair-queueing analogue of the old immediate 503.
var ErrQueueFull = errors.New("tenant: wait queue full")

type waiter struct {
	grant   chan struct{} // closed exactly once when a slot is granted
	granted bool          // written under FairQueue.mu
}

// tq is one tenant's queue state inside the ring.
type tq struct {
	t       *Tenant
	waiters []*waiter
	deficit int
	inRing  bool
}

// FairQueue is the deficit-weighted slot dispatcher. Safe for
// concurrent use.
type FairQueue struct {
	mu       sync.Mutex
	capacity int
	inflight int
	tenants  map[*Tenant]*tq
	ring     []*tq // rotation order; only tenants with waiters are in it
}

// NewFairQueue builds a queue over capacity execution slots (capacity
// must be >= 1).
func NewFairQueue(capacity int) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &FairQueue{capacity: capacity, tenants: make(map[*Tenant]*tq)}
}

// Acquire obtains an execution slot for t, waiting in t's own bounded
// queue when the server is saturated. It returns a release function on
// success; ErrQueueFull when t's queue is at capacity; or the context
// error when ctx expires while queued. Waiting time counts against the
// request's deadline — the caller applies its timeout before admission.
func (q *FairQueue) Acquire(ctx context.Context, t *Tenant) (func(), error) {
	q.mu.Lock()
	if q.inflight < q.capacity && len(q.ring) == 0 {
		// Fast path: free slot and no one queued anywhere. Skipping the
		// queue while waiters exist would let a lucky arrival overtake the
		// rotation, so it is gated on an empty ring, not just a free slot.
		q.inflight++
		q.mu.Unlock()
		return q.releaseFunc(), nil
	}
	tqe := q.tenants[t]
	if tqe == nil {
		tqe = &tq{t: t}
		q.tenants[t] = tqe
	}
	depth := t.Config.QueueDepth
	if depth < 1 {
		depth = 1
	}
	if len(tqe.waiters) >= depth {
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{grant: make(chan struct{})}
	tqe.waiters = append(tqe.waiters, w)
	if !tqe.inRing {
		tqe.inRing = true
		tqe.deficit = 0
		q.ring = append(q.ring, tqe)
	}
	t.Queued.Add(1)
	// A slot may be free even though the ring is non-empty (we just
	// joined it); dispatch before sleeping so a single waiter never
	// stalls waiting for a release that already happened.
	q.dispatchLocked()
	q.mu.Unlock()

	select {
	case <-w.grant:
		return q.releaseFunc(), nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed between ctx firing and the
			// lock. The slot is ours and must go back.
			q.inflight--
			q.dispatchLocked()
			q.mu.Unlock()
			return nil, ctx.Err()
		}
		q.removeWaiterLocked(tqe, w)
		q.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent slot release.
func (q *FairQueue) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			q.inflight--
			q.dispatchLocked()
			q.mu.Unlock()
		})
	}
}

// dispatchLocked grants free slots to queued waiters by deficit round
// robin: the ring head earns its weight in deficit each pass and spends
// one deficit per granted query; an emptied tenant leaves the ring.
func (q *FairQueue) dispatchLocked() {
	for q.inflight < q.capacity && len(q.ring) > 0 {
		head := q.ring[0]
		if len(head.waiters) == 0 {
			head.inRing = false
			head.deficit = 0
			q.ring = q.ring[1:]
			continue
		}
		if head.deficit < 1 {
			head.deficit += head.t.Config.Weight
			if head.deficit < 1 {
				head.deficit = 1 // weight <= 0 must still make progress
			}
			// Earned its quantum; spend it before rotating so a lone
			// tenant doesn't spin the ring.
		}
		for q.inflight < q.capacity && head.deficit >= 1 && len(head.waiters) > 0 {
			w := head.waiters[0]
			head.waiters = head.waiters[1:]
			head.deficit--
			w.granted = true
			q.inflight++
			close(w.grant)
		}
		if len(head.waiters) == 0 {
			head.inRing = false
			head.deficit = 0
			q.ring = q.ring[1:]
			continue
		}
		if head.deficit < 1 {
			// Quantum spent with waiters left: rotate to the tail.
			q.ring = append(q.ring[1:], head)
		}
		// deficit >= 1 with a full house: slots ran out; loop exits.
	}
}

// removeWaiterLocked drops an abandoned (ctx-expired) waiter.
func (q *FairQueue) removeWaiterLocked(tqe *tq, w *waiter) {
	for i, cand := range tqe.waiters {
		if cand == w {
			tqe.waiters = append(tqe.waiters[:i], tqe.waiters[i+1:]...)
			break
		}
	}
	// Leaving an empty tenant in the ring is fine: dispatch skips and
	// removes it on the next pass.
}

// QueuedLen returns how many requests are waiting across all tenants —
// the pressure signal behind the load-derived Retry-After hint.
func (q *FairQueue) QueuedLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, tqe := range q.tenants {
		n += len(tqe.waiters)
	}
	return n
}

// TenantQueuedLen returns how many of t's requests are waiting.
func (q *FairQueue) TenantQueuedLen(t *Tenant) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tqe := q.tenants[t]; tqe != nil {
		return len(tqe.waiters)
	}
	return 0
}

// Capacity returns the number of execution slots.
func (q *FairQueue) Capacity() int { return q.capacity }
