package pooling

import (
	"errors"
	"testing"

	"probesim/internal/graph"
)

func TestPoolDedupes(t *testing.T) {
	got := Pool(
		[]graph.NodeID{1, 2, 3},
		[]graph.NodeID{3, 4},
		[]graph.NodeID{1, 5},
	)
	want := []graph.NodeID{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("pool = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool = %v, want %v", got, want)
		}
	}
}

func TestPoolEmpty(t *testing.T) {
	if got := Pool(nil, nil); len(got) != 0 {
		t.Fatalf("empty pool = %v", got)
	}
}

func TestGroundTruthRanksByExpert(t *testing.T) {
	pool := []graph.NodeID{10, 20, 30, 40}
	expert := func(v graph.NodeID) (float64, error) {
		return map[graph.NodeID]float64{10: 0.1, 20: 0.9, 30: 0.5, 40: 0.9}[v], nil
	}
	top, scores, err := GroundTruth(pool, expert, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 20 and 40 tie at 0.9; ascending id breaks the tie.
	want := []graph.NodeID{20, 40, 30}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("truth = %v, want %v", top, want)
		}
	}
	if scores[30] != 0.5 {
		t.Fatalf("score map wrong: %v", scores)
	}
}

func TestGroundTruthClamps(t *testing.T) {
	expert := func(v graph.NodeID) (float64, error) { return float64(v), nil }
	top, _, err := GroundTruth([]graph.NodeID{1, 2}, expert, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("clamp failed: %v", top)
	}
}

func TestGroundTruthPropagatesExpertError(t *testing.T) {
	expert := func(v graph.NodeID) (float64, error) { return 0, errors.New("boom") }
	if _, _, err := GroundTruth([]graph.NodeID{1}, expert, 1); err == nil {
		t.Fatal("expert error swallowed")
	}
}

func TestGroundTruthRejectsBadK(t *testing.T) {
	expert := func(v graph.NodeID) (float64, error) { return 0, nil }
	if _, _, err := GroundTruth([]graph.NodeID{1}, expert, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
}
