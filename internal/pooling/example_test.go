package pooling_test

import (
	"context"
	"fmt"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/pooling"
	"probesim/internal/power"
)

// Pooling builds ground truth from the union of competing answers when the
// exact ranking is too expensive: merge, dedupe, let the expert score only
// the pool, and take the pool's best k. Here the expert is the exact Power
// Method, so the pooled truth equals the real one.
func Example() {
	g := gen.ErdosRenyi(40, 200, 7)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-10})
	if err != nil {
		panic(err)
	}
	var u graph.NodeID = 3

	// Two "systems" submit their top-5 answers.
	a, err := core.TopK(context.Background(), g, u, 5, core.Options{EpsA: 0.05, Seed: 1})
	if err != nil {
		panic(err)
	}
	b, err := core.TopK(context.Background(), g, u, 5, core.Options{EpsA: 0.2, Seed: 9})
	if err != nil {
		panic(err)
	}
	pool := pooling.Pool(nodesOf(a), nodesOf(b))
	top, scores, err := pooling.GroundTruth(pool, func(v graph.NodeID) (float64, error) {
		return truth.At(u, v), nil
	}, 5)
	if err != nil {
		panic(err)
	}

	fmt.Printf("pool holds at most 10, at least 5 candidates: %v\n",
		len(pool) >= 5 && len(pool) <= 10)
	fmt.Printf("pooled ranking is by exact score: %v\n",
		scores[top[0]] >= scores[top[1]])
	// Output:
	// pool holds at most 10, at least 5 candidates: true
	// pooled ranking is by exact score: true
}

func nodesOf(res []core.ScoredNode) []graph.NodeID {
	out := make([]graph.NodeID, len(res))
	for i, r := range res {
		out[i] = r.Node
	}
	return out
}
