// Package pooling implements the §6.2 evaluation methodology for graphs
// whose exact SimRank is out of reach: the top-k answers of every evaluated
// algorithm are merged into a pool, a high-precision "expert" scores each
// pooled node, and the pool's true top-k becomes the ground truth that the
// per-algorithm answers are judged against. The pooled top-k is by
// construction the best answer any of the evaluated algorithms could have
// produced.
package pooling

import (
	"fmt"
	"sort"

	"probesim/internal/graph"
)

// Expert scores one candidate node against the query node with high
// precision (the paper uses the single-pair Monte Carlo estimator with
// εa = 10⁻⁴ at 99.999 % confidence; on small graphs the Power Method is an
// even stronger expert).
type Expert func(v graph.NodeID) (float64, error)

// Pool merges the answer lists with duplicates removed, preserving
// first-appearance order.
func Pool(lists ...[]graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	var out []graph.NodeID
	for _, list := range lists {
		for _, v := range list {
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// GroundTruth scores every pooled node with the expert and returns the
// pool's top-k (descending score, ascending id) along with the full score
// map used by the ranking metrics.
func GroundTruth(pool []graph.NodeID, expert Expert, k int) ([]graph.NodeID, map[graph.NodeID]float64, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("pooling: k = %d < 1", k)
	}
	scores := make(map[graph.NodeID]float64, len(pool))
	for _, v := range pool {
		s, err := expert(v)
		if err != nil {
			return nil, nil, fmt.Errorf("pooling: expert failed on node %d: %w", v, err)
		}
		scores[v] = s
	}
	order := append([]graph.NodeID(nil), pool...)
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k], scores, nil
}
