// Package tsf implements the Two-Stage random-walk Framework of Shao et
// al. (PVLDB 2015), the index-based dynamic-graph competitor evaluated in
// §6. TSF precomputes Rg "one-way graphs" — per graph, every node samples
// one of its in-neighbors — and reuses each one-way graph Rq times per
// query, so the index answers top-k queries from Rg·Rq coupled walk pairs.
//
// Faithfully to §2.3, this implementation reproduces TSF's two documented
// sources of bias, because the paper's accuracy comparisons depend on them:
//
//  1. it estimates Σ_i Pr[walks meet at step i], an over-estimate of the
//     first-meeting probability (no deduplication across steps), and
//  2. walks in a one-way graph follow the sampled parent pointers even
//     through cycles, exactly as the stored index dictates.
//
// The index supports O(Rg) expected-time edge insertion/removal (the reason
// the paper calls TSF "the only indexing approach that allows efficient
// update"), and MemoryBytes reports the index size for Table 4's space
// columns.
package tsf

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// Rg is the number of one-way graphs. Default 300 (§6.1).
	Rg int
	// Seed drives the in-neighbor sampling. Default 1.
	Seed uint64
	// Workers bounds build parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.Rg == 0 {
		o.Rg = 300
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// QueryOptions configures queries against a built index.
type QueryOptions struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// Rq is the number of times each one-way graph is reused. Default 40
	// (§6.1).
	Rq int
	// Depth caps walk length; contributions decay as c^t, so the default
	// stops when c^t < 0.004 (t = 11 at c = 0.6).
	Depth int
	// Seed drives the query-side walks. Default 1.
	Seed uint64
	// Workers bounds query parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Rq == 0 {
		o.Rq = 40
	}
	if o.Depth == 0 {
		o.Depth = int(math.Ceil(math.Log(0.004) / math.Log(o.C)))
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o QueryOptions) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("tsf: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.Rq < 1 {
		return fmt.Errorf("tsf: Rq = %d < 1", o.Rq)
	}
	if o.Depth < 1 {
		return fmt.Errorf("tsf: depth %d < 1", o.Depth)
	}
	return nil
}

// Index is the TSF one-way graph index. It references the view it was
// built on; updates must go through OnEdgeAdded/OnEdgeRemoved to keep the
// index consistent with the graph.
type Index struct {
	g  graph.View
	rg int
	// parent[k][v] is v's sampled in-neighbor in one-way graph k, or -1.
	parent [][]int32
	// children[k] is the forward adjacency of one-way graph k in CSR form:
	// the children of w are childTargets[k][childOff[k][w]:childOff[k][w+1]].
	// Rebuilt lazily after updates.
	childOff     [][]int32
	childTargets [][]int32
	childrenOK   []bool
	rng          *xrand.RNG
	mu           sync.Mutex // guards lazy children rebuilds
}

// Build samples Rg one-way graphs from g — any graph view, mutable or a
// published immutable snapshot, so index builds can run against the same
// pinned generation the serving plane queries. (The dynamic-update path,
// OnEdgeAdded/OnEdgeRemoved, naturally pairs with a mutable view.)
func Build(g graph.View, opt BuildOptions) *Index {
	opt = opt.withDefaults()
	n := g.NumNodes()
	idx := &Index{
		g:            g,
		rg:           opt.Rg,
		parent:       make([][]int32, opt.Rg),
		childOff:     make([][]int32, opt.Rg),
		childTargets: make([][]int32, opt.Rg),
		childrenOK:   make([]bool, opt.Rg),
		rng:          xrand.New(opt.Seed).Split(0xFFFF),
	}
	root := xrand.New(opt.Seed)
	workers := opt.Workers
	if workers > opt.Rg {
		workers = opt.Rg
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ks := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ks {
				rng := root.Split(uint64(k))
				p := make([]int32, n)
				for v := 0; v < n; v++ {
					in := g.InNeighbors(graph.NodeID(v))
					if len(in) == 0 {
						p[v] = -1
						continue
					}
					p[v] = in[rng.Intn(len(in))]
				}
				idx.parent[k] = p
				idx.buildChildren(k)
			}
		}()
	}
	for k := 0; k < opt.Rg; k++ {
		ks <- k
	}
	close(ks)
	wg.Wait()
	return idx
}

// buildChildren constructs the CSR forward adjacency of one-way graph k.
func (idx *Index) buildChildren(k int) {
	n := len(idx.parent[k])
	off := make([]int32, n+1)
	for _, p := range idx.parent[k] {
		if p >= 0 {
			off[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	targets := make([]int32, off[n])
	cursor := make([]int32, n)
	for v, p := range idx.parent[k] {
		if p >= 0 {
			targets[off[p]+cursor[p]] = int32(v)
			cursor[p]++
		}
	}
	idx.childOff[k] = off
	idx.childTargets[k] = targets
	idx.childrenOK[k] = true
}

// Rg returns the number of one-way graphs.
func (idx *Index) Rg() int { return idx.rg }

// MemoryBytes reports the resident size of the index (parent arrays plus
// children CSR), the quantity Table 4 compares against the graph size.
func (idx *Index) MemoryBytes() int64 {
	var b int64
	for k := 0; k < idx.rg; k++ {
		b += int64(cap(idx.parent[k])) * 4
		b += int64(cap(idx.childOff[k])) * 4
		b += int64(cap(idx.childTargets[k])) * 4
	}
	return b
}

// OnEdgeAdded updates the index after the edge (x -> v) was inserted into
// the graph: in each one-way graph, v's sampled parent becomes x with
// probability 1/|I(v)|, preserving uniformity (reservoir argument).
func (idx *Index) OnEdgeAdded(x, v graph.NodeID) {
	d := idx.g.InDegree(v)
	if d == 0 {
		return
	}
	p := 1 / float64(d)
	for k := 0; k < idx.rg; k++ {
		if idx.rng.Float64() < p {
			idx.parent[k][v] = x
			idx.childrenOK[k] = false
		}
	}
}

// OnEdgeRemoved updates the index after the edge (x -> v) was removed from
// the graph: every one-way graph whose sampled parent of v was x resamples
// uniformly from the remaining in-neighbors (or clears it).
func (idx *Index) OnEdgeRemoved(x, v graph.NodeID) {
	in := idx.g.InNeighbors(v)
	for k := 0; k < idx.rg; k++ {
		if idx.parent[k][v] != x {
			continue
		}
		if len(in) == 0 {
			idx.parent[k][v] = -1
		} else {
			idx.parent[k][v] = in[idx.rng.Intn(len(in))]
		}
		idx.childrenOK[k] = false
	}
}

// ensureChildren rebuilds stale children CSRs before a query.
func (idx *Index) ensureChildren() {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	for k := 0; k < idx.rg; k++ {
		if !idx.childrenOK[k] {
			idx.buildChildren(k)
		}
	}
}

// SingleSource estimates s(u, v) for every v from the index. Per one-way
// graph k and reuse q, a fresh reverse walk from u (true graph edges,
// explicit c^t decay) is matched against the deterministic chains of the
// one-way graph: every node w_t of u's walk contributes c^t to every node
// whose chain reaches w_t at step t (the depth-t descendants of w_t in
// one-way graph k).
func (idx *Index) SingleSource(u graph.NodeID, opt QueryOptions) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := idx.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("tsf: query node %d out of range [0, %d)", u, n)
	}
	idx.ensureChildren()
	workers := opt.Workers
	if workers > idx.rg {
		workers = idx.rg
	}
	if workers < 1 {
		workers = 1
	}
	root := xrand.New(opt.Seed)
	accs := make([][]float64, workers)
	var wg sync.WaitGroup
	ks := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make([]float64, n)
			walkBuf := make([]graph.NodeID, 0, opt.Depth+1)
			frontier := make([]graph.NodeID, 0, 64)
			nextFrontier := make([]graph.NodeID, 0, 64)
			for k := range ks {
				rng := root.Split(uint64(k))
				for q := 0; q < opt.Rq; q++ {
					walkBuf = idx.reverseWalk(u, opt.Depth, rng, walkBuf)
					idx.accumulateMeets(k, walkBuf, opt.C, acc, &frontier, &nextFrontier)
				}
			}
			accs[w] = acc
		}(w)
	}
	for k := 0; k < idx.rg; k++ {
		ks <- k
	}
	close(ks)
	wg.Wait()
	out := make([]float64, n)
	for _, acc := range accs {
		if acc == nil {
			continue
		}
		for v, s := range acc {
			out[v] += s
		}
	}
	inv := 1 / float64(idx.rg*opt.Rq)
	for v := range out {
		out[v] *= inv
		if out[v] > 1 {
			out[v] = 1 // the over-estimation bias can exceed 1; clamp
		}
	}
	out[u] = 1
	return out, nil
}

// TopK returns the k nodes most similar to u under the index's estimate.
func (idx *Index) TopK(u graph.NodeID, k int, opt QueryOptions) ([]core.ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tsf: top-k requires k >= 1, got %d", k)
	}
	est, err := idx.SingleSource(u, opt)
	if err != nil {
		return nil, err
	}
	return core.SelectTopK(est, u, k), nil
}

// reverseWalk generates a uniform reverse walk of at most depth steps from
// u over the true graph (no stochastic termination; decay is applied
// explicitly as c^t by the caller).
func (idx *Index) reverseWalk(u graph.NodeID, depth int, rng *xrand.RNG, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf[:0], u)
	cur := u
	for t := 0; t < depth; t++ {
		in := idx.g.InNeighbors(cur)
		if len(in) == 0 {
			break
		}
		cur = in[rng.Intn(len(in))]
		buf = append(buf, cur)
	}
	return buf
}

// accumulateMeets adds c^t to acc[v] for every node v whose one-way chain
// in graph k coincides with walk[t] at step t >= 1. The depth-t descendant
// sets are enumerated level by level over the children CSR.
func (idx *Index) accumulateMeets(k int, walk []graph.NodeID, c float64, acc []float64, frontier, nextFrontier *[]graph.NodeID) {
	off, targets := idx.childOff[k], idx.childTargets[k]
	decay := 1.0
	for t := 1; t < len(walk); t++ {
		decay *= c
		w := walk[t]
		// Descend t levels from w.
		f := append((*frontier)[:0], w)
		for lvl := 0; lvl < t && len(f) > 0; lvl++ {
			nf := (*nextFrontier)[:0]
			for _, x := range f {
				nf = append(nf, targets[off[x]:off[x+1]]...)
			}
			f, *nextFrontier = nf, f
		}
		*frontier = f[:0]
		for _, v := range f {
			acc[v] += decay
		}
	}
}
