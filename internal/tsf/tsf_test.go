package tsf

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// validParents checks that every sampled parent is a real in-neighbor (or
// -1 exactly when the node has no in-neighbors).
func validParents(t *testing.T, g *graph.Graph, idx *Index) {
	t.Helper()
	for k := 0; k < idx.rg; k++ {
		for v := 0; v < g.NumNodes(); v++ {
			p := idx.parent[k][v]
			if g.InDegree(graph.NodeID(v)) == 0 {
				if p != -1 {
					t.Fatalf("one-way graph %d: node %d has no in-neighbors but parent %d", k, v, p)
				}
				continue
			}
			if p < 0 || !g.HasEdge(p, graph.NodeID(v)) {
				t.Fatalf("one-way graph %d: parent %d of %d is not an in-neighbor", k, p, v)
			}
		}
	}
}

// childrenConsistent checks the CSR children structure inverts the parent
// pointers exactly.
func childrenConsistent(t *testing.T, idx *Index) {
	t.Helper()
	n := len(idx.parent[0])
	for k := 0; k < idx.rg; k++ {
		seen := map[[2]int32]bool{}
		for w := 0; w < n; w++ {
			for _, c := range idx.childTargets[k][idx.childOff[k][w]:idx.childOff[k][w+1]] {
				if idx.parent[k][c] != int32(w) {
					t.Fatalf("one-way graph %d: child %d of %d has parent %d", k, c, w, idx.parent[k][c])
				}
				seen[[2]int32{int32(w), c}] = true
			}
		}
		count := 0
		for v := 0; v < n; v++ {
			if idx.parent[k][v] >= 0 {
				count++
				if !seen[[2]int32{idx.parent[k][v], int32(v)}] {
					t.Fatalf("one-way graph %d: parent edge of %d missing from children CSR", k, v)
				}
			}
		}
		if len(seen) != count {
			t.Fatalf("one-way graph %d: children CSR has %d edges, parents have %d", k, len(seen), count)
		}
	}
}

func TestBuildValid(t *testing.T) {
	rng := xrand.New(1)
	g := randomGraph(rng, 40, 160)
	idx := Build(g, BuildOptions{Rg: 20, Seed: 2})
	validParents(t, g, idx)
	childrenConsistent(t, idx)
	if idx.Rg() != 20 {
		t.Fatalf("Rg = %d", idx.Rg())
	}
}

// Parent sampling must be uniform over in-neighbors.
func TestParentUniformity(t *testing.T) {
	g := graph.New(4)
	for _, u := range []graph.NodeID{1, 2, 3} {
		if err := g.AddEdge(u, 0); err != nil {
			t.Fatal(err)
		}
	}
	idx := Build(g, BuildOptions{Rg: 30000, Seed: 3})
	counts := map[int32]int{}
	for k := 0; k < idx.rg; k++ {
		counts[idx.parent[k][0]]++
	}
	for p, c := range counts {
		got := float64(c) / float64(idx.rg)
		if math.Abs(got-1.0/3) > 0.01 {
			t.Errorf("parent %d frequency %.4f, want 1/3", p, got)
		}
	}
}

// exactTSFTarget computes TSF's own estimation target analytically:
// Σ_t c^t · Pr[U_t = V_t] for independent uniform reverse walks (walks die
// at zero-in-degree nodes). TSF is biased w.r.t. SimRank but must be
// unbiased w.r.t. this quantity.
func exactTSFTarget(g *graph.Graph, u, v graph.NodeID, c float64, depth int) float64 {
	n := g.NumNodes()
	step := func(p []float64) []float64 {
		q := make([]float64, n)
		for x := 0; x < n; x++ {
			if p[x] == 0 {
				continue
			}
			in := g.InNeighbors(graph.NodeID(x))
			if len(in) == 0 {
				continue // walk dies
			}
			w := p[x] / float64(len(in))
			for _, y := range in {
				q[y] += w
			}
		}
		return q
	}
	pu := make([]float64, n)
	pv := make([]float64, n)
	pu[u], pv[v] = 1, 1
	total, decay := 0.0, 1.0
	for t := 1; t <= depth; t++ {
		pu, pv = step(pu), step(pv)
		decay *= c
		dot := 0.0
		for x := 0; x < n; x++ {
			dot += pu[x] * pv[x]
		}
		total += decay * dot
	}
	return total
}

func TestQueryMatchesAnalyticTarget(t *testing.T) {
	g := graph.Toy()
	idx := Build(g, BuildOptions{Rg: 4000, Seed: 5})
	est, err := idx.SingleSource(graph.ToyA, QueryOptions{C: 0.25, Rq: 5, Depth: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.NodeID{graph.ToyB, graph.ToyC, graph.ToyD, graph.ToyE, graph.ToyF} {
		want := exactTSFTarget(g, graph.ToyA, v, 0.25, 12)
		if math.Abs(est[v]-want) > 0.012 {
			t.Errorf("TSF(a,%s) = %.4f, analytic target %.4f", graph.ToyNames[v], est[v], want)
		}
	}
}

// The TSF estimate over-estimates SimRank in expectation (its documented
// bias): on the toy graph the analytic target dominates the true SimRank.
func TestOverEstimationBias(t *testing.T) {
	g := graph.Toy()
	// s(a,d) = 0.131 (Table 2); TSF's target counts repeated meetings.
	target := exactTSFTarget(g, graph.ToyA, graph.ToyD, 0.25, 20)
	if target < 0.131-0.001 {
		t.Fatalf("TSF target %.4f should dominate SimRank 0.131", target)
	}
}

func TestEstimateRangeAndSelf(t *testing.T) {
	rng := xrand.New(7)
	g := randomGraph(rng, 50, 250)
	idx := Build(g, BuildOptions{Rg: 50, Seed: 8})
	est, err := idx.SingleSource(3, QueryOptions{Rq: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if est[3] != 1 {
		t.Fatal("s̃(u,u) != 1")
	}
	for v, s := range est {
		if s < 0 || s > 1 {
			t.Fatalf("estimate out of range at %d: %v", v, s)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := graph.Toy()
	idx := Build(g, BuildOptions{Rg: 5})
	if _, err := idx.SingleSource(99, QueryOptions{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := idx.SingleSource(0, QueryOptions{C: 5}); err == nil {
		t.Error("bad c accepted")
	}
	if _, err := idx.TopK(0, 0, QueryOptions{}); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := xrand.New(10)
	g := randomGraph(rng, 40, 200)
	idx := Build(g, BuildOptions{Rg: 30, Seed: 4})
	opt := QueryOptions{Rq: 5, Seed: 11, Workers: 3}
	a, err := idx.SingleSource(1, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx.SingleSource(1, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("not reproducible at %d", v)
		}
	}
}

// Dynamic maintenance: after edge churn the index must stay valid and its
// parent distribution must remain uniform over the current in-neighbors.
func TestDynamicUpdates(t *testing.T) {
	rng := xrand.New(12)
	g := randomGraph(rng, 30, 120)
	idx := Build(g, BuildOptions{Rg: 40, Seed: 13})
	type edge struct{ u, v graph.NodeID }
	var live []edge
	for u := 0; u < 30; u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			live = append(live, edge{graph.NodeID(u), v})
		}
	}
	for step := 0; step < 400; step++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			u, v := rng.Int31n(30), rng.Int31n(30)
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			idx.OnEdgeAdded(u, v)
			live = append(live, edge{u, v})
		} else {
			i := rng.Intn(len(live))
			e := live[i]
			if err := g.RemoveEdge(e.u, e.v); err != nil {
				t.Fatal(err)
			}
			idx.OnEdgeRemoved(e.u, e.v)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	validParents(t, g, idx)
	// Queries after churn lazily rebuild children and still work.
	if _, err := idx.SingleSource(0, QueryOptions{Rq: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	childrenConsistent(t, idx)
}

// Uniformity is preserved by the update rule: insert edges one by one into
// an initially single-parent node and check the parent distribution.
func TestUpdateUniformity(t *testing.T) {
	const trials = 20000
	counts := map[int32]int{}
	for trial := 0; trial < trials; trial++ {
		g := graph.New(5)
		if err := g.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
		idx := Build(g, BuildOptions{Rg: 1, Seed: uint64(trial) + 1})
		for _, u := range []graph.NodeID{2, 3, 4} {
			if err := g.AddEdge(u, 0); err != nil {
				t.Fatal(err)
			}
			idx.OnEdgeAdded(u, 0)
		}
		counts[idx.parent[0][0]]++
	}
	for p, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.015 {
			t.Errorf("parent %d frequency %.4f, want 0.25", p, got)
		}
	}
}

func TestMemoryBytesScalesWithRg(t *testing.T) {
	rng := xrand.New(14)
	g := randomGraph(rng, 100, 400)
	small := Build(g, BuildOptions{Rg: 10, Seed: 1}).MemoryBytes()
	big := Build(g, BuildOptions{Rg: 40, Seed: 1}).MemoryBytes()
	if small <= 0 || big <= small*3 {
		t.Fatalf("index size must scale with Rg: %d vs %d", small, big)
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}
