package promexpo

import (
	"strings"
	"testing"
)

func TestValueHistogram(t *testing.T) {
	h := NewValueHistogram([]float64{0.1, 0.2, 0.4})
	for _, v := range []float64{0.05, 0.1, 0.15, 0.3, 0.9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	// Values at a bound land in that bound's bucket (le semantics).
	if got := h.BucketCount(0); got != 2 {
		t.Fatalf("<=0.1: %d, want 2", got)
	}
	if got := h.BucketCount(1); got != 3 {
		t.Fatalf("<=0.2: %d, want 3", got)
	}
	if got := h.BucketCount(2); got != 4 {
		t.Fatalf("<=0.4: %d, want 4", got)
	}
	if got := h.BucketCount(3); got != 5 {
		t.Fatalf("total: %d, want 5", got)
	}

	var sb strings.Builder
	WriteValueHistogram(&sb, "x_epsa", "help text", h)
	page := sb.String()
	for _, want := range []string{
		"# TYPE x_epsa histogram",
		`x_epsa_bucket{le="0.1"} 2`,
		`x_epsa_bucket{le="0.4"} 4`,
		`x_epsa_bucket{le="+Inf"} 5`,
		"x_epsa_sum 1.5",
		"x_epsa_count 5",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("missing %q in:\n%s", want, page)
		}
	}
}

func TestValueHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds accepted")
		}
	}()
	NewValueHistogram([]float64{0.2, 0.1})
}
