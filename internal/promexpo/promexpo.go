// Package promexpo is the serving-plane Prometheus exposition layer:
// per-route latency histograms, in-flight gauges and outcome counters
// for the HTTP service, rendered in the Prometheus text format. It was
// split out of internal/metrics (which keeps the paper's evaluation
// metrics — accuracy, ranking quality) so the serving stack depends on
// exposition only, not the offline-evaluation code.
//
// Everything here is lock-free on the hot path: a request observation is
// one atomic add per counter plus one per histogram bucket. The registry
// mutex guards only route registration (a handful of calls at startup)
// and the text scrape.
package promexpo

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds: a 1-2-5
// ladder from 1µs to 50s. The ladder reaches below 100µs because the
// hot-source index tier answers in hundreds of nanoseconds — with a
// 100µs first bucket, hot and live traffic were indistinguishable on
// /metrics (everything hot landed in bucket one), so the sub-100µs
// rungs are what make the tier separation visible to a scrape. The
// terminal +Inf bucket is implicit.
var latencyBuckets = [24]float64{
	0.000001, 0.000002, 0.000005,
	0.00001, 0.00002, 0.00005,
	0.0001, 0.0002, 0.0005,
	0.001, 0.002, 0.005,
	0.01, 0.02, 0.05,
	0.1, 0.2, 0.5,
	1, 2, 5,
	10, 20, 50,
}

// LatencyBounds returns the latency bucket ladder (seconds, ascending,
// +Inf implicit) so other planes — the per-tenant SLO tracker, the load
// harness — bucket durations identically to the serving histograms.
func LatencyBounds() []float64 {
	return append([]float64(nil), latencyBuckets[:]...)
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	buckets [len(latencyBuckets) + 1]atomic.Int64 // last = +Inf
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations: the smallest bucket bound whose cumulative count
// reaches q. Intended for tests and coarse reporting, not for precision.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, bound := range latencyBuckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bound
		}
	}
	return math.Inf(1)
}

// RouteMetrics is the serving instrumentation of one HTTP route.
type RouteMetrics struct {
	name string

	// Latency observes the full handler time of every completed request,
	// including rejected and failed ones (their latency is the cost the
	// route imposed on the server).
	Latency Histogram

	// InFlight tracks requests currently inside the handler.
	InFlight atomic.Int64

	// Requests counts every request routed here; Timeouts those stopped
	// by a deadline (HTTP 504); Rejections those turned away by
	// admission control or backpressure WITHOUT running (HTTP 503 at the
	// door — the overload signal operators alert on); BudgetExhausted
	// those that ran and used up their walk/work budget (also 503, but
	// admitted work, not load shedding); Errors everything else >= 400.
	Requests        atomic.Int64
	Errors          atomic.Int64
	Timeouts        atomic.Int64
	Rejections      atomic.Int64
	BudgetExhausted atomic.Int64

	// Degraded counts requests admitted over the soft watermark and
	// served at reduced accuracy (X-ProbeSim-Degraded) instead of being
	// rejected.
	Degraded atomic.Int64
}

// Registry is a set of route metrics plus free-form gauges, scraped as
// one Prometheus text page.
type Registry struct {
	mu     sync.Mutex
	routes map[string]*RouteMetrics
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{routes: make(map[string]*RouteMetrics)}
}

// Route returns (registering on first use) the metrics of one route.
func (r *Registry) Route(name string) *RouteMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.routes[name]; ok {
		return m
	}
	m := &RouteMetrics{name: name}
	r.routes[name] = m
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return m
}

// snapshotRoutes returns the registered routes in stable order.
func (r *Registry) snapshotRoutes() []*RouteMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RouteMetrics, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.routes[name])
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). extra, when non-nil, runs after the route
// metrics so callers can append process-specific gauges (shard counters,
// cache statistics) to the same page.
func (r *Registry) WritePrometheus(w io.Writer, extra func(io.Writer)) {
	routes := r.snapshotRoutes()

	fmt.Fprintf(w, "# HELP probesim_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(w, "# TYPE probesim_request_duration_seconds histogram\n")
	for _, m := range routes {
		var cum int64
		for i, bound := range latencyBuckets {
			cum += m.Latency.buckets[i].Load()
			fmt.Fprintf(w, "probesim_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				m.name, formatBound(bound), cum)
		}
		cum += m.Latency.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "probesim_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", m.name, cum)
		fmt.Fprintf(w, "probesim_request_duration_seconds_sum{route=%q} %g\n",
			m.name, time.Duration(m.Latency.sumNS.Load()).Seconds())
		fmt.Fprintf(w, "probesim_request_duration_seconds_count{route=%q} %d\n", m.name, m.Latency.count.Load())
	}

	counter := func(metric, help string, value func(*RouteMetrics) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		for _, m := range routes {
			fmt.Fprintf(w, "%s{route=%q} %d\n", metric, m.name, value(m))
		}
	}
	counter("probesim_requests_total", "Requests routed, by route.",
		func(m *RouteMetrics) int64 { return m.Requests.Load() })
	counter("probesim_request_timeouts_total", "Requests stopped by a deadline (HTTP 504), by route.",
		func(m *RouteMetrics) int64 { return m.Timeouts.Load() })
	counter("probesim_request_rejections_total", "Requests rejected by admission control or backpressure (HTTP 503), by route.",
		func(m *RouteMetrics) int64 { return m.Rejections.Load() })
	counter("probesim_request_budget_exhausted_total", "Admitted requests that exhausted their walk/work budget (HTTP 503), by route.",
		func(m *RouteMetrics) int64 { return m.BudgetExhausted.Load() })
	counter("probesim_request_errors_total", "Requests failed for other reasons, by route.",
		func(m *RouteMetrics) int64 { return m.Errors.Load() })
	counter("probesim_request_degraded_total", "Requests served at reduced accuracy under admission pressure, by route.",
		func(m *RouteMetrics) int64 { return m.Degraded.Load() })

	fmt.Fprintf(w, "# HELP probesim_inflight_requests Requests currently being served, by route.\n")
	fmt.Fprintf(w, "# TYPE probesim_inflight_requests gauge\n")
	for _, m := range routes {
		fmt.Fprintf(w, "probesim_inflight_requests{route=%q} %d\n", m.name, m.InFlight.Load())
	}

	if extra != nil {
		extra(w)
	}
}

// WriteGauge writes one gauge sample with HELP/TYPE headers, for use in
// a WritePrometheus extra callback.
func WriteGauge(w io.Writer, name, help string, value int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
}

// WriteCounter is WriteGauge with the counter TYPE, for monotonic
// process-level samples (the _total naming convention implies counter
// semantics, and scrape linters flag _total-named gauges).
func WriteCounter(w io.Writer, name, help string, value int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
}

// Sample is one labeled sample for WriteLabeled. Label is the rendered
// label set without braces, e.g. `worker="10.0.0.3:9090"`.
type Sample struct {
	Label string
	Value int64
}

// WriteLabeled writes one metric family with HELP/TYPE headers and one
// line per labeled sample — the form the router's per-worker gauges and
// counters use. typ is "gauge" or "counter".
func WriteLabeled(w io.Writer, name, help, typ string, samples []Sample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		fmt.Fprintf(w, "%s{%s} %d\n", name, s.Label, s.Value)
	}
}

// FloatSample is one labeled float sample for WriteLabeledFloat. Label
// is the rendered label set without braces, e.g. `tenant="search"`.
type FloatSample struct {
	Label string
	Value float64
}

// WriteLabeledFloat writes one float-valued metric family with HELP/TYPE
// headers and one line per labeled sample — the form the per-tenant SLO
// gauges (p99 seconds, error-budget burn ratio) use. typ is "gauge" or
// "counter".
func WriteLabeledFloat(w io.Writer, name, help, typ string, samples []FloatSample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		fmt.Fprintf(w, "%s{%s} %s\n", name, s.Label, formatValue(s.Value))
	}
}

// EscapeLabel renders v as a Prometheus label value: backslash, double
// quote and newline escaped per the text exposition format. Callers
// embedding externally supplied strings (tenant names) into label sets
// must go through this — a raw quote in a tenant header must not be able
// to break the scrape.
func EscapeLabel(v string) string {
	var b []byte
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

// WriteBuildInfo writes the probesim_build_info gauge: a constant 1
// whose labels carry the binary name, the module version, the VCS
// revision the binary was built from, and the Go runtime — the standard
// "which build is this scrape talking to" join key for dashboards.
func WriteBuildInfo(w io.Writer, binary string) {
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else {
			version = "devel"
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	fmt.Fprintf(w, "# HELP probesim_build_info Build metadata; the value is always 1.\n# TYPE probesim_build_info gauge\n")
	fmt.Fprintf(w, "probesim_build_info{binary=%q,version=%q,commit=%q,goversion=%q} 1\n",
		EscapeLabel(binary), EscapeLabel(version), EscapeLabel(revision), EscapeLabel(runtime.Version()))
}

// formatValue renders a float sample value (Prometheus accepts Go float
// formatting, including "+Inf" and "NaN").
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// the shortest exact decimal, no exponent notation at these magnitudes.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// ValueHistogram is a fixed-bucket histogram over an arbitrary value
// domain (the latency Histogram's bucket ladder is hard-wired to
// seconds). The serving plane uses it for the served-εa distribution:
// under degrade-instead-of-reject admission, operators need to SEE how
// much accuracy the fleet is actually giving up under pressure, not just
// that some requests carried a degraded header. Observation is one
// binary search plus three atomic adds; safe for concurrent use.
type ValueHistogram struct {
	bounds   []float64
	buckets  []atomic.Int64 // len(bounds)+1; last = +Inf
	count    atomic.Int64
	sumMicro atomic.Int64 // sum scaled by 1e6 to stay integral
}

// NewValueHistogram builds a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit).
func NewValueHistogram(bounds []float64) *ValueHistogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: value histogram bounds must ascend")
	}
	return &ValueHistogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *ValueHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(int64(math.Round(v * 1e6)))
}

// Count returns the number of observations.
func (h *ValueHistogram) Count() int64 { return h.count.Load() }

// BucketCount returns the cumulative count at or below the i-th bound
// (i == len(bounds) means total), for tests and coarse reporting.
func (h *ValueHistogram) BucketCount(i int) int64 {
	var cum int64
	for j := 0; j <= i && j < len(h.buckets); j++ {
		cum += h.buckets[j].Load()
	}
	return cum
}

// WriteValueHistogram writes h as one Prometheus histogram family, for
// use in a WritePrometheus extra callback.
func WriteValueHistogram(w io.Writer, name, help string, h *ValueHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicro.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
