package promexpo

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond) // bucket le=0.001
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond) // bucket le=0.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// A value equal to a bound belongs to that bound's bucket (le is <=).
	if q := h.Quantile(0.5); q != 0.0005 {
		t.Fatalf("p50 = %v, want 0.0005", q)
	}
	if q := h.Quantile(0.99); q != 0.5 {
		t.Fatalf("p99 = %v, want 0.5", q)
	}
}

func TestHistogramInfBucket(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Minute)
	if q := h.Quantile(0.5); !math.IsInf(q, 1) {
		t.Fatalf("p50 of an off-scale observation = %v, want +Inf", q)
	}
}

func TestRegistryPrometheusPage(t *testing.T) {
	r := NewRegistry()
	m := r.Route("/topk")
	m.Requests.Add(3)
	m.Timeouts.Add(1)
	m.Rejections.Add(2)
	m.Latency.Observe(2 * time.Millisecond)
	r.Route("/single-source").Requests.Add(1)

	var b strings.Builder
	r.WritePrometheus(&b, func(w io.Writer) {
		WriteGauge(w, "probesim_test_gauge", "A test gauge.", 42)
	})
	page := b.String()
	for _, want := range []string{
		`probesim_request_duration_seconds_bucket{route="/topk",le="0.002"} 1`,
		`probesim_request_duration_seconds_count{route="/topk"} 1`,
		`probesim_requests_total{route="/topk"} 3`,
		`probesim_request_timeouts_total{route="/topk"} 1`,
		`probesim_request_rejections_total{route="/topk"} 2`,
		`probesim_requests_total{route="/single-source"} 1`,
		`probesim_inflight_requests{route="/topk"} 0`,
		"# TYPE probesim_request_duration_seconds histogram",
		"probesim_test_gauge 42",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
	// Cumulative buckets: le=+Inf equals the count.
	if !strings.Contains(page, `probesim_request_duration_seconds_bucket{route="/topk",le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", page)
	}
}

func TestRouteRegistrationIsIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Route("/topk").Requests.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Route("/topk").Requests.Load(); got != 1600 {
		t.Fatalf("requests = %d, want 1600 (duplicate route registration?)", got)
	}
}
