package promexpo

// Lint self-tests: a page rendered by this package's own writers must
// pass, and each class of exposition breakage (the ones a hand-written
// family can introduce) must be flagged.

import (
	"strings"
	"testing"
	"time"
)

func lintString(t *testing.T, page string) []error {
	t.Helper()
	return Lint(strings.NewReader(page))
}

func TestLintAcceptsOwnWriters(t *testing.T) {
	reg := NewRegistry()
	m := reg.Route("/topk")
	m.Requests.Add(3)
	m.Latency.Observe(50 * time.Microsecond)
	m.Latency.Observe(3 * time.Millisecond)
	vh := NewValueHistogram([]float64{0.1, 0.5, 1})
	vh.Observe(0.3)
	var b strings.Builder
	reg.WritePrometheus(&b, nil)
	WriteGauge(&b, "probesim_graph_nodes", "Nodes.", 42)
	WriteCounter(&b, "probesim_cache_hits_total", "Hits.", 7)
	WriteValueHistogram(&b, "probesim_degraded_epsa", "Served epsa.", vh)
	WriteLabeled(&b, "probesim_router_worker_up", "Worker up.", "gauge", []Sample{
		{Label: `worker="10.0.0.3:9090",group="0"`, Value: 1},
	})
	WriteLabeledFloat(&b, "probesim_slo_error_budget_burn_ratio", "Burn.", "gauge", []FloatSample{
		{Label: `tenant="search"`, Value: 1.25},
	})
	WriteBuildInfo(&b, "probesim-test")
	if errs := lintString(t, b.String()); len(errs) != 0 {
		t.Fatalf("own writers fail lint: %v\npage:\n%s", errs, b.String())
	}
}

func TestLintFlagsMissingType(t *testing.T) {
	page := "probesim_thing 1\n"
	if errs := lintString(t, page); len(errs) == 0 {
		t.Fatal("sample without HELP/TYPE passed lint")
	}
}

func TestLintFlagsDuplicateDeclaration(t *testing.T) {
	page := "# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x 1\n" +
		"# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x 2\n"
	if errs := lintString(t, page); len(errs) == 0 {
		t.Fatal("duplicate family declaration passed lint")
	}
}

func TestLintFlagsDescendingBuckets(t *testing.T) {
	page := `# HELP probesim_h H.
# TYPE probesim_h histogram
probesim_h_bucket{le="0.5"} 1
probesim_h_bucket{le="0.1"} 2
probesim_h_bucket{le="+Inf"} 3
probesim_h_sum 1
probesim_h_count 3
`
	errs := lintString(t, page)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "not ascending") {
			found = true
		}
	}
	if !found {
		t.Fatalf("descending bounds not flagged: %v", errs)
	}
}

func TestLintFlagsDecreasingCumulativeCounts(t *testing.T) {
	page := `# HELP probesim_h H.
# TYPE probesim_h histogram
probesim_h_bucket{le="0.1"} 5
probesim_h_bucket{le="0.5"} 3
probesim_h_bucket{le="+Inf"} 5
probesim_h_sum 1
probesim_h_count 5
`
	errs := lintString(t, page)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "decrease") {
			found = true
		}
	}
	if !found {
		t.Fatalf("decreasing cumulative counts not flagged: %v", errs)
	}
}

func TestLintFlagsMissingInfAndSumCount(t *testing.T) {
	page := `# HELP probesim_h H.
# TYPE probesim_h histogram
probesim_h_bucket{le="0.1"} 5
`
	errs := lintString(t, page)
	var inf, sum, count bool
	for _, e := range errs {
		s := e.Error()
		inf = inf || strings.Contains(s, "+Inf")
		sum = sum || strings.Contains(s, "_sum")
		count = count || strings.Contains(s, "_count")
	}
	if !inf || !sum || !count {
		t.Fatalf("missing +Inf/_sum/_count not all flagged: %v", errs)
	}
}

func TestLintFlagsCountBucketMismatch(t *testing.T) {
	page := `# HELP probesim_h H.
# TYPE probesim_h histogram
probesim_h_bucket{le="0.1"} 5
probesim_h_bucket{le="+Inf"} 6
probesim_h_sum 1
probesim_h_count 7
`
	errs := lintString(t, page)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "_count") && strings.Contains(e.Error(), "+Inf") {
			found = true
		}
	}
	if !found {
		t.Fatalf("_count/+Inf mismatch not flagged: %v", errs)
	}
}

func TestLintFlagsBadEscapes(t *testing.T) {
	for _, page := range []string{
		"# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x{t=\"a\\qb\"} 1\n", // illegal escape
		"# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x{t=\"open} 1\n",    // unterminated
		"# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x{t=bare} 1\n",      // unquoted
	} {
		if errs := lintString(t, page); len(errs) == 0 {
			t.Fatalf("bad label page passed lint:\n%s", page)
		}
	}
}

func TestLintFlagsBadValue(t *testing.T) {
	page := "# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x oops\n"
	if errs := lintString(t, page); len(errs) == 0 {
		t.Fatal("unparseable value passed lint")
	}
}

func TestEscapeLabel(t *testing.T) {
	in := "a\"b\\c\nd"
	want := `a\"b\\c\nd`
	if got := EscapeLabel(in); got != want {
		t.Fatalf("EscapeLabel(%q) = %q, want %q", in, got, want)
	}
	// Round trip through the lint parser: an escaped hostile tenant name
	// must parse back to the original.
	page := "# HELP probesim_x X.\n# TYPE probesim_x gauge\nprobesim_x{tenant=\"" + EscapeLabel(in) + "\"} 1\n"
	if errs := lintString(t, page); len(errs) != 0 {
		t.Fatalf("escaped hostile label fails lint: %v", errs)
	}
}

func TestLatencyBoundsReachBelow100Micros(t *testing.T) {
	bounds := LatencyBounds()
	if bounds[0] != 0.000001 {
		t.Fatalf("first bound %g, want 1µs", bounds[0])
	}
	// A 116ns hot-tier answer and a 97µs live answer must land in
	// different buckets now.
	var h Histogram
	h.Observe(116 * time.Nanosecond)
	h.Observe(97 * time.Microsecond)
	if h.buckets[0].Load() != 1 {
		t.Fatal("hot-tier-scale observation did not land in the 1µs bucket")
	}
	if q := h.Quantile(0.5); q >= 0.0001 {
		t.Fatalf("p50 %g no longer distinguishes sub-100µs traffic", q)
	}
}
