package promexpo

// Lint is a scrape-validity checker for the Prometheus text exposition
// format (version 0.0.4), run by tests over the full /metrics page so a
// new hand-written family cannot silently break scrapes. It enforces the
// rules real scrapers and promtool trip on:
//
//   - every sample belongs to a family with HELP and TYPE declared
//     before its first sample, and families are declared at most once
//     (a duplicate declaration means two code paths write one name);
//   - metric and label names are well-formed, label values are quoted
//     with only the three legal escapes (\\ , \" , \n);
//   - sample values parse (floats, +Inf, -Inf, NaN);
//   - histogram families carry _sum and _count, every bucket series has
//     a le label, bucket bounds strictly ascend per series, cumulative
//     counts never decrease, the +Inf bucket exists and equals _count.
//
// It is deliberately a validator over the rendered page, not the
// registry: the page is the contract the scraper sees.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

type lintFamily struct {
	help bool
	typ  string
	// histogram bookkeeping, keyed by the series' label set minus le.
	buckets  map[string][]bucketSample
	sum      map[string]bool
	count    map[string]float64
	hasCount map[string]bool
}

type bucketSample struct {
	le    float64
	count float64
}

// Lint reads one exposition page and returns every violation found (nil
// when the page is valid).
func Lint(r io.Reader) []error {
	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	fams := map[string]*lintFamily{}
	fam := func(name string) *lintFamily {
		f, ok := fams[name]
		if !ok {
			f = &lintFamily{
				buckets:  map[string][]bucketSample{},
				sum:      map[string]bool{},
				count:    map[string]float64{},
				hasCount: map[string]bool{},
			}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comments are legal
			}
			if !validMetricName(name) {
				addf("line %d: %s for invalid metric name %q", lineNo, kind, name)
				continue
			}
			f := fam(name)
			switch kind {
			case "HELP":
				if f.help {
					addf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = true
			case "TYPE":
				if f.typ != "" {
					addf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					addf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
					f.typ = "untyped"
				}
				if !f.help {
					addf("line %d: TYPE for %s precedes its HELP", lineNo, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		base, suffix := splitHistogramSuffix(name, fams)
		f, declared := fams[base]
		if !declared || f.typ == "" || !f.help {
			addf("line %d: sample %s before HELP+TYPE for %s", lineNo, name, base)
			continue
		}
		switch suffix {
		case "_bucket":
			le, rest, ok := takeLE(labels)
			if !ok {
				addf("line %d: histogram bucket %s without le label", lineNo, line)
				continue
			}
			f.buckets[rest] = append(f.buckets[rest], bucketSample{le, value})
		case "_sum":
			f.sum[canonLabels(labels)] = true
		case "_count":
			key := canonLabels(labels)
			f.count[key] = value
			f.hasCount[key] = true
		}
	}
	if err := sc.Err(); err != nil {
		addf("reading page: %v", err)
	}

	// Cross-line histogram checks, in stable family order.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typ != "histogram" {
			continue
		}
		series := make([]string, 0, len(f.buckets))
		for s := range f.buckets {
			series = append(series, s)
		}
		sort.Strings(series)
		if len(series) == 0 {
			addf("histogram %s declared but has no bucket series", n)
		}
		for _, s := range series {
			bs := f.buckets[s]
			label := s
			if label == "" {
				label = "(no labels)"
			}
			hasInf := false
			for i := 1; i < len(bs); i++ {
				if !(bs[i].le > bs[i-1].le) {
					addf("histogram %s{%s}: bucket bounds not ascending (%g after %g)", n, label, bs[i].le, bs[i-1].le)
				}
				if bs[i].count < bs[i-1].count {
					addf("histogram %s{%s}: cumulative bucket counts decrease at le=%g", n, label, bs[i].le)
				}
			}
			last := bs[len(bs)-1]
			if isInf(last.le) {
				hasInf = true
			}
			if !hasInf {
				addf("histogram %s{%s}: missing +Inf bucket", n, label)
			}
			if !f.sum[s] {
				addf("histogram %s{%s}: missing _sum", n, label)
			}
			if !f.hasCount[s] {
				addf("histogram %s{%s}: missing _count", n, label)
			} else if hasInf && f.count[s] != last.count {
				addf("histogram %s{%s}: _count %g != +Inf bucket %g", n, label, f.count[s], last.count)
			}
		}
	}
	return errs
}

func isInf(v float64) bool { return v > 1e300 }

// parseComment splits "# HELP name text" / "# TYPE name kind"; any other
// comment returns ok=false.
func parseComment(line string) (kind, name, rest string, ok bool) {
	body, found := strings.CutPrefix(line, "# ")
	if !found {
		return "", "", "", false
	}
	kind, body, found = strings.Cut(body, " ")
	if !found || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return kind, name, rest, true
}

// splitHistogramSuffix maps a sample name onto its family: _bucket/_sum/
// _count samples belong to the declared histogram (or summary) family
// they suffix, everything else to itself.
func splitHistogramSuffix(name string, fams map[string]*lintFamily) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, found := strings.CutSuffix(name, suf); found {
			if f, ok := fams[b]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return b, suf
			}
		}
	}
	return name, ""
}

type labelPair struct{ k, v string }

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (name string, labels []labelPair, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name in %q", line)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameChar(line[j], j == i) {
				j++
			}
			key := line[i:j]
			if key == "" || j >= len(line) || line[j] != '=' {
				return "", nil, 0, fmt.Errorf("bad label name at byte %d in %q", i, line)
			}
			j++ // '='
			if j >= len(line) || line[j] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value for %s in %q", key, line)
			}
			j++
			var val strings.Builder
			closed := false
			for j < len(line) {
				c := line[j]
				if c == '\\' {
					if j+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[j+1] {
					case '\\', '"':
						val.WriteByte(line[j+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("illegal escape \\%c in %q", line[j+1], line)
					}
					j += 2
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value for %s in %q", key, line)
			}
			labels = append(labels, labelPair{key, val.String()})
			i = j
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	// A timestamp may follow the value; we emit none, but tolerate it.
	valueStr, _, _ := strings.Cut(rest, " ")
	value, err = parseValue(valueStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", valueStr, line)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil // comparisons on NaN are meaningless; treat as 0
	}
	return strconv.ParseFloat(s, 64)
}

// takeLE extracts the le label (parsed) and returns the remaining label
// set in canonical order — the series key histogram checks group by.
func takeLE(labels []labelPair) (le float64, rest string, ok bool) {
	var others []labelPair
	for _, lp := range labels {
		if lp.k == "le" {
			v, err := parseValue(lp.v)
			if err != nil {
				return 0, "", false
			}
			le, ok = v, true
			continue
		}
		others = append(others, lp)
	}
	return le, canonLabels(others), ok
}

func canonLabels(labels []labelPair) string {
	sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
	parts := make([]string, len(labels))
	for i, lp := range labels {
		parts[i] = lp.k + "=" + strconv.Quote(lp.v)
	}
	return strings.Join(parts, ",")
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return name != ""
}
