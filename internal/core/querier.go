package core

import (
	"container/list"
	"fmt"
	"sync"

	"probesim/internal/graph"
)

// Querier is the "lightweight indexing" idea the paper's conclusion (§7)
// sketches as future work: keep ProbeSim index-free, but memoize recent
// query results keyed by (query node, graph version) so that repeated
// queries on an unchanged graph are free, while any graph mutation
// invalidates every cached answer automatically (the graph's version
// counter moves).
//
// The cache holds at most Capacity single-source vectors (8n bytes each)
// with LRU eviction. A Querier is safe for concurrent use; cache misses
// run queries outside the lock so concurrent misses proceed in parallel
// (duplicate concurrent misses may both compute, which is benign because
// results for a fixed option set and graph version are deterministic).
type Querier struct {
	g        *graph.Graph
	opt      Options
	capacity int

	mu      sync.Mutex
	entries map[graph.NodeID]*list.Element
	order   *list.List // front = most recent
	version uint64

	hits, misses int64
}

type cacheEntry struct {
	node   graph.NodeID
	scores []float64
}

// NewQuerier wraps g with a result cache of the given capacity (numbers of
// cached single-source vectors; minimum 1).
func NewQuerier(g *graph.Graph, opt Options, capacity int) *Querier {
	if capacity < 1 {
		capacity = 1
	}
	return &Querier{
		g:        g,
		opt:      opt,
		capacity: capacity,
		entries:  make(map[graph.NodeID]*list.Element),
		order:    list.New(),
		version:  g.Version(),
	}
}

// SingleSource returns the cached single-source vector for u, computing
// and caching it on a miss. The returned slice is shared with the cache:
// callers must not modify it.
func (q *Querier) SingleSource(u graph.NodeID) ([]float64, error) {
	q.mu.Lock()
	if v := q.g.Version(); v != q.version {
		// The graph changed: all cached answers are stale.
		q.entries = make(map[graph.NodeID]*list.Element)
		q.order.Init()
		q.version = v
	}
	if el, ok := q.entries[u]; ok {
		q.order.MoveToFront(el)
		q.hits++
		scores := el.Value.(*cacheEntry).scores
		q.mu.Unlock()
		return scores, nil
	}
	q.misses++
	version := q.version
	q.mu.Unlock()

	scores, err := SingleSource(q.g, u, q.opt)
	if err != nil {
		return nil, err
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	// Only cache if the graph did not move underneath the computation.
	if q.g.Version() == version && q.version == version {
		if el, ok := q.entries[u]; ok {
			q.order.MoveToFront(el)
		} else {
			el := q.order.PushFront(&cacheEntry{node: u, scores: scores})
			q.entries[u] = el
			for q.order.Len() > q.capacity {
				last := q.order.Back()
				q.order.Remove(last)
				delete(q.entries, last.Value.(*cacheEntry).node)
			}
		}
	}
	return scores, nil
}

// TopK answers a top-k query through the cache.
func (q *Querier) TopK(u graph.NodeID, k int) ([]ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	est, err := q.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return SelectTopK(est, u, k), nil
}

// Stats reports cache effectiveness.
func (q *Querier) Stats() (hits, misses int64, cached int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hits, q.misses, q.order.Len()
}
