package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"probesim/internal/budget"
	"probesim/internal/graph"
)

// Querier is the "lightweight indexing" idea the paper's conclusion (§7)
// sketches as future work: keep ProbeSim index-free, but memoize recent
// query results keyed by (query node, snapshot version) so that repeated
// queries on an unchanged graph are free, while any graph mutation
// invalidates every cached answer automatically (a fresh snapshot carries
// a fresh version).
//
// The cache holds at most Capacity single-source vectors (8n bytes each)
// with LRU eviction. A Querier is safe for concurrent use; cache misses
// run queries outside the lock so distinct-node misses proceed in
// parallel, while concurrent misses for the SAME node are de-duplicated
// single-flight style: one goroutine computes, the rest wait for its
// result. (Under serving load the duplicate work the seed tolerated is
// anything but benign: a popular node going viral would multiply an
// O(n/εa²·log n) computation by the number of concurrent requests.)
type Querier struct {
	ex *Executor
	// track controls staleness detection: a standalone Querier built by
	// NewQuerier refreshes the executor's snapshot on every query (the
	// legacy "mutate between queries" contract), while a Querier sharing a
	// server-owned Executor trusts the server to Refresh after mutations
	// and never touches the mutable graph on the read path.
	track    bool
	capacity int

	mu      sync.Mutex
	entries map[graph.NodeID]*list.Element
	order   *list.List // front = most recent
	version uint64
	flights map[graph.NodeID]*flight

	hits, misses, shared, evictions int64
}

type cacheEntry struct {
	node   graph.NodeID
	scores []float64
}

// flight is one in-progress single-source computation that concurrent
// misses for the same node attach to.
type flight struct {
	done   chan struct{}
	scores []float64
	err    error
}

// NewQuerier wraps g with a result cache of the given capacity (number of
// cached single-source vectors; minimum 1). The graph may be mutated
// between queries (each query picks up the latest state) but not while
// queries are in flight; use NewQuerierOn with an externally refreshed
// Executor for that.
func NewQuerier(g *graph.Graph, opt Options, capacity int) *Querier {
	return newQuerier(NewExecutor(g, opt), capacity, true)
}

// NewQuerierOn wraps an existing Executor with a result cache. The caller
// owns snapshot publication: queries always run against ex's current
// snapshot and never read the mutable graph, so they are safe to run
// concurrently with graph mutations as long as the mutator calls
// ex.Refresh.
func NewQuerierOn(ex *Executor, capacity int) *Querier {
	return newQuerier(ex, capacity, false)
}

func newQuerier(ex *Executor, capacity int, track bool) *Querier {
	if capacity < 1 {
		capacity = 1
	}
	return &Querier{
		ex:       ex,
		track:    track,
		capacity: capacity,
		entries:  make(map[graph.NodeID]*list.Element),
		order:    list.New(),
		version:  ex.Snapshot().Version(),
		flights:  make(map[graph.NodeID]*flight),
	}
}

// Executor returns the underlying executor.
func (q *Querier) Executor() *Executor { return q.ex }

// isOwnerSpecific reports whether a flight error is a property of the
// owning request's patience (its context was canceled or its deadline
// passed) rather than of the query itself. Shared-configuration trips —
// walk/work caps and deadlines derived from the executor options'
// Budget.Timeout, which budget.Error marks as Shared — are deliberately
// NOT in this family: an identically-configured retry is doomed to the
// same failure, so waiters must share it instead of repeating it.
func isOwnerSpecific(err error) bool {
	var be *budget.Error
	if errors.As(err, &be) && be.Shared {
		return false
	}
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// SingleSource returns the cached single-source vector for u, computing
// and caching it on a miss. The returned slice is shared with the cache
// (and with any concurrent callers that joined the same computation):
// callers must not modify it.
//
// ctx bounds this caller's query (together with the executor options'
// Budget). Cache hits are free and never fail; misses run under ctx. A
// caller that joins another goroutine's in-flight computation waits no
// longer than its own ctx allows, and if the flight owner was canceled
// while this caller is still live, the caller recomputes on its own —
// one request's tight deadline never poisons another's answer. Partial
// (canceled) results are returned to their owner with the error but are
// never cached.
func (q *Querier) SingleSource(ctx context.Context, u graph.NodeID) ([]float64, error) {
	snap := q.ex.Snapshot()
	if q.track {
		snap = q.ex.Refresh()
	}
	q.mu.Lock()
	if v := snap.Version(); v > q.version {
		// The graph moved forward: all cached answers are stale. In-progress
		// flights stay in the map until their owners finish; new misses for
		// the same node under the new version start fresh flights keyed by
		// the node, so we drop the stale ones here.
		q.entries = make(map[graph.NodeID]*list.Element)
		q.order.Init()
		q.flights = make(map[graph.NodeID]*flight)
		q.version = v
	} else if v < q.version {
		// This goroutine grabbed its snapshot, then a mutation published a
		// newer one and another query already advanced the cache to it.
		// Serve consistently from the old snapshot WITHOUT touching the
		// cache: resetting q.version backward would wipe the warm cache
		// (and its single-flight dedup) on every slow request that
		// overlaps a write.
		q.misses++
		q.mu.Unlock()
		return q.ex.SingleSourceOn(ctx, snap, u)
	}
	if el, ok := q.entries[u]; ok {
		q.order.MoveToFront(el)
		q.hits++
		scores := el.Value.(*cacheEntry).scores
		q.mu.Unlock()
		return scores, nil
	}
	if f, ok := q.flights[u]; ok {
		// Another goroutine is already computing u at this version: wait
		// for it instead of repeating the work — but no longer than this
		// caller's own context allows.
		q.shared++
		q.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("core: query %d: abandoned shared flight: %w", u, ctx.Err())
		}
		if f.err != nil && isOwnerSpecific(f.err) && ctx.Err() == nil {
			// The flight owner ran out of time or budget, but this caller
			// has not: re-enter the cache path instead of inheriting a
			// stranger's partial answer. Going through SingleSource (not
			// straight to the executor) matters under load — the first
			// live waiter registers a fresh flight and the rest join IT,
			// so a canceled owner costs one recomputation, not one per
			// waiter. Terminates because each recursion requires the new
			// owner to be canceled while this caller is not, and this
			// caller's own expiry exits via the selects above.
			return q.SingleSource(ctx, u)
		}
		return f.scores, f.err
	}
	q.misses++
	f := &flight{done: make(chan struct{})}
	q.flights[u] = f
	version := q.version
	q.mu.Unlock()

	scores, err := q.ex.SingleSourceOn(ctx, snap, u)
	f.scores, f.err = scores, err

	q.mu.Lock()
	defer q.mu.Unlock()
	// Deregister BEFORE closing f.done (both under the mutex): a waiter
	// that wakes on the close and re-enters SingleSource to retry an
	// owner-specific failure must never re-find this completed flight,
	// or it would spin joining it until the owner won the mutex race.
	if q.flights[u] == f {
		delete(q.flights, u)
	}
	close(f.done)
	if err != nil {
		// Partial (canceled/budget-stopped) vectors go back to the caller
		// for diagnostics but must never enter the cache.
		return scores, err
	}
	// Only cache if no newer snapshot was published underneath the
	// computation.
	if q.version == version && q.ex.Snapshot().Version() == version {
		if el, ok := q.entries[u]; ok {
			q.order.MoveToFront(el)
		} else {
			el := q.order.PushFront(&cacheEntry{node: u, scores: scores})
			q.entries[u] = el
			for q.order.Len() > q.capacity {
				last := q.order.Back()
				q.order.Remove(last)
				delete(q.entries, last.Value.(*cacheEntry).node)
				q.evictions++
			}
		}
	}
	return scores, nil
}

// TopK answers a top-k query through the cache.
func (q *Querier) TopK(ctx context.Context, u graph.NodeID, k int) ([]ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	est, err := q.SingleSource(ctx, u)
	if err != nil {
		return nil, err
	}
	return SelectTopK(est, u, k), nil
}

// Stats reports cache effectiveness.
func (q *Querier) Stats() (hits, misses int64, cached int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hits, q.misses, q.order.Len()
}

// SharedFlights reports how many queries joined another goroutine's
// in-flight computation instead of running their own.
func (q *Querier) SharedFlights() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shared
}

// CacheStats is a point-in-time snapshot of every cache counter —
// the serving plane exports it on /stats and /metrics so the per-node
// cache's effectiveness can be compared against other tiers'.
type CacheStats struct {
	Hits      int64 // answers served from the cache
	Misses    int64 // answers computed (includes stale-snapshot serves)
	Shared    int64 // callers that joined another goroutine's flight
	Evictions int64 // entries dropped by LRU capacity pressure
	Cached    int   // vectors currently held
}

// CacheStats returns all cache counters in one consistent read.
func (q *Querier) CacheStats() CacheStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return CacheStats{
		Hits:      q.hits,
		Misses:    q.misses,
		Shared:    q.shared,
		Evictions: q.evictions,
		Cached:    q.order.Len(),
	}
}
