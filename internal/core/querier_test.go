package core

import (
	"context"
	"sync"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

func querierGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := xrand.New(77)
	return randomGraph(rng, 40, 200)
}

func TestQuerierCachesHits(t *testing.T) {
	g := querierGraph(t)
	q := NewQuerier(g, Options{NumWalks: 300, Seed: 1}, 4)
	a, err := q.SingleSource(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.SingleSource(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second query did not hit the cache")
	}
	hits, misses, cached := q.Stats()
	if hits != 1 || misses != 1 || cached != 1 {
		t.Fatalf("stats = %d hits %d misses %d cached", hits, misses, cached)
	}
}

func TestQuerierInvalidatesOnMutation(t *testing.T) {
	g := querierGraph(t)
	q := NewQuerier(g, Options{NumWalks: 300, Seed: 1}, 4)
	if _, err := q.SingleSource(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	// Mutate: the cached answer must not be served again.
	if err := g.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SingleSource(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := q.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("mutation did not invalidate: %d hits %d misses", hits, misses)
	}
}

func TestQuerierLRUEviction(t *testing.T) {
	g := querierGraph(t)
	q := NewQuerier(g, Options{NumWalks: 100, Seed: 1}, 2)
	for _, u := range []graph.NodeID{1, 2, 3} { // 1 evicted by 3
		if _, err := q.SingleSource(context.Background(), u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.SingleSource(context.Background(), 2); err != nil { // still cached
		t.Fatal(err)
	}
	if _, err := q.SingleSource(context.Background(), 1); err != nil { // miss again
		t.Fatal(err)
	}
	hits, misses, cached := q.Stats()
	if hits != 1 || misses != 4 || cached != 2 {
		t.Fatalf("LRU stats wrong: %d hits %d misses %d cached", hits, misses, cached)
	}
	// CacheStats agrees with Stats and counts the two evictions (1 by 3,
	// then 3 by 1's re-entry).
	cs := q.CacheStats()
	if cs.Hits != hits || cs.Misses != misses || cs.Cached != cached {
		t.Fatalf("CacheStats disagrees with Stats: %+v", cs)
	}
	if cs.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", cs.Evictions)
	}
}

func TestQuerierTopKMatchesDirect(t *testing.T) {
	g := querierGraph(t)
	opt := Options{NumWalks: 500, Seed: 9}
	q := NewQuerier(g, opt, 4)
	got, err := q.TopK(context.Background(), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(context.Background(), g, 5, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cached top-k diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if _, err := q.TopK(context.Background(), 5, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

func TestQuerierConcurrentAccess(t *testing.T) {
	g := querierGraph(t)
	q := NewQuerier(g, Options{NumWalks: 100, Seed: 2}, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := q.SingleSource(context.Background(), graph.NodeID((w+i)%10)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQuerierMinCapacity(t *testing.T) {
	g := querierGraph(t)
	q := NewQuerier(g, Options{NumWalks: 50}, 0)
	if _, err := q.SingleSource(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	_, _, cached := q.Stats()
	if cached != 1 {
		t.Fatalf("capacity clamp failed: %d cached", cached)
	}
}
