package core

import (
	"fmt"

	"probesim/internal/graph"
)

// WalkTree is the reverse-reachability tree of §4.2 (Algorithm 3): a
// compact trie over the nr √c-walks of a query. Each tree node stores a
// graph node and the number of walks sharing the root-to-node prefix, so
// that a shared prefix is probed once and its scores weighted by the count.
type WalkTree struct {
	node        []graph.NodeID
	weight      []int64
	firstChild  []int32
	nextSibling []int32
	walks       int64
	pathBuf     []graph.NodeID // reusable DFS stack for AppendPaths
}

// NewWalkTree returns a tree whose root holds the query node u with weight
// zero (the root accumulates one weight unit per inserted walk, matching
// Algorithm 3 line 2).
func NewWalkTree(u graph.NodeID) *WalkTree {
	return &WalkTree{
		node:        []graph.NodeID{u},
		weight:      []int64{0},
		firstChild:  []int32{-1},
		nextSibling: []int32{-1},
	}
}

// Reset re-roots the tree at u and discards every inserted walk while
// keeping the backing arrays, so a pooled tree reaches steady state with
// no per-query tree allocation (the remaining batch-mode hot spot after
// the PR 1 scratch pooling).
func (t *WalkTree) Reset(u graph.NodeID) {
	t.node = append(t.node[:0], u)
	t.weight = append(t.weight[:0], 0)
	t.firstChild = append(t.firstChild[:0], -1)
	t.nextSibling = append(t.nextSibling[:0], -1)
	t.walks = 0
}

// Insert adds one √c-walk (w[0] must be the root's node) to the tree,
// incrementing the weight of every prefix it shares and creating new tree
// nodes for the novel suffix.
func (t *WalkTree) Insert(w []graph.NodeID) error {
	if len(w) == 0 || w[0] != t.node[0] {
		return fmt.Errorf("core: walk %v does not start at the tree root %d", w, t.node[0])
	}
	t.walks++
	t.weight[0]++
	cur := int32(0)
	for _, g := range w[1:] {
		child := t.findChild(cur, g)
		if child < 0 {
			child = t.addChild(cur, g)
		}
		t.weight[child]++
		cur = child
	}
	return nil
}

func (t *WalkTree) findChild(parent int32, g graph.NodeID) int32 {
	for c := t.firstChild[parent]; c >= 0; c = t.nextSibling[c] {
		if t.node[c] == g {
			return c
		}
	}
	return -1
}

func (t *WalkTree) addChild(parent int32, g graph.NodeID) int32 {
	id := int32(len(t.node))
	t.node = append(t.node, g)
	t.weight = append(t.weight, 0)
	t.firstChild = append(t.firstChild, -1)
	t.nextSibling = append(t.nextSibling, t.firstChild[parent])
	t.firstChild[parent] = id
	return id
}

// Walks returns the number of inserted walks (nr).
func (t *WalkTree) Walks() int64 { return t.walks }

// Len returns the number of tree nodes including the root.
func (t *WalkTree) Len() int { return len(t.node) }

// Path is one root-to-node path of the tree: a partial √c-walk shared by
// Weight of the inserted walks. Nodes includes the root, so len >= 2.
type Path struct {
	Nodes  []graph.NodeID
	Weight int64
}

// Paths enumerates every root-to-node path of length >= 2 in depth-first
// order (Algorithm 3 lines 11-14 apply PROBE to each). The returned paths
// own their storage.
func (t *WalkTree) Paths() []Path {
	var out []Path
	var buf []graph.NodeID
	var dfs func(n int32)
	dfs = func(n int32) {
		buf = append(buf, t.node[n])
		if len(buf) >= 2 {
			out = append(out, Path{
				Nodes:  append([]graph.NodeID(nil), buf...),
				Weight: t.weight[n],
			})
		}
		for c := t.firstChild[n]; c >= 0; c = t.nextSibling[c] {
			dfs(c)
		}
		buf = buf[:len(buf)-1]
	}
	dfs(0)
	return out
}

// AppendPaths is the pooled variant of Paths: it appends the same paths
// (same order, same contents) to dst, packing each path's nodes into a
// disjoint region of the shared arena. Both slices are grown as needed
// and returned for reuse; at steady state the enumeration allocates
// nothing. The returned paths alias the arena and are valid until the
// arena's next reuse, so callers must consume them before recycling
// (runBatched does: paths die with the query).
func (t *WalkTree) AppendPaths(dst []Path, arena []graph.NodeID) ([]Path, []graph.NodeID) {
	t.pathBuf = t.pathBuf[:0]
	var dfs func(n int32)
	dfs = func(n int32) {
		t.pathBuf = append(t.pathBuf, t.node[n])
		if len(t.pathBuf) >= 2 {
			start := len(arena)
			arena = append(arena, t.pathBuf...)
			dst = append(dst, Path{
				Nodes:  arena[start:len(arena):len(arena)],
				Weight: t.weight[n],
			})
		}
		for c := t.firstChild[n]; c >= 0; c = t.nextSibling[c] {
			dfs(c)
		}
		t.pathBuf = t.pathBuf[:len(t.pathBuf)-1]
	}
	dfs(0)
	return dst, arena
}

// checkInvariants verifies that every parent's weight is at least the sum
// of its children's weights (walks may end at the parent) and that the
// root's weight equals the number of inserted walks. Used by tests.
func (t *WalkTree) checkInvariants() error {
	if t.weight[0] != t.walks {
		return fmt.Errorf("core: root weight %d != inserted walks %d", t.weight[0], t.walks)
	}
	for n := range t.node {
		var childSum int64
		for c := t.firstChild[n]; c >= 0; c = t.nextSibling[c] {
			childSum += t.weight[c]
		}
		if childSum > t.weight[n] {
			return fmt.Errorf("core: node %d weight %d < children sum %d", n, t.weight[n], childSum)
		}
	}
	return nil
}
