// Package core implements ProbeSim (the paper's primary contribution):
// index-free approximate single-source and top-k SimRank with a provable
// absolute-error guarantee. See Options and Mode for the variants.
//
// The estimator follows §3.1: for each of nr sampled √c-walks W(u) from the
// query node, every prefix W(u, i) is probed for the first-meeting
// probability of every node v, and s̃(u, v) averages the per-walk sums.
// Lemma 1 shows each trial is unbiased, and Theorems 1-3 bound the error of
// the basic, pruned, and randomized variants respectively.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/probe"
	"probesim/internal/qtrace"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// ErrBudget is returned (wrapped) when a query exhausts an explicit work
// budget (Budget.MaxWalks or Budget.MaxProbeWork) rather than a deadline.
// Deadline and cancellation stops unwrap to context.DeadlineExceeded and
// context.Canceled respectively.
var ErrBudget = budget.ErrBudget

// ScoredNode is one entry of a top-k answer.
type ScoredNode struct {
	Node  graph.NodeID
	Score float64
}

// QueryBinder is implemented by views that need per-query state — the
// distributed router view binds each query to its context (so lazy shard
// fetches and remote walk segments run under the query's deadline) and to
// its budget meter (so a worker transport failure trips every kernel
// worker at its next checkpoint instead of letting the query run to
// completion over a half-dead topology).
//
// BindQuery returns the view the kernels should run against and a finish
// function the query calls once all workers have drained; finish reports
// the first transport failure the bound view absorbed, which the query
// returns (wrapped) alongside its partial result.
type QueryBinder interface {
	BindQuery(ctx context.Context, m *budget.Meter) (graph.View, func() error)
}

// bindQuery resolves the per-query view for g. For ordinary views it is
// free: g itself and a nil finish.
func bindQuery(ctx context.Context, g graph.View, m *budget.Meter) (graph.View, func() error) {
	if b, ok := g.(QueryBinder); ok {
		return b.BindQuery(ctx, m)
	}
	return g, nil
}

// SingleSource answers an approximate single-source SimRank query
// (Definition 1): it returns s̃(u, v) for every node v, with
// |s̃(u,v) − s(u,v)| <= εa for all v simultaneously with probability
// >= 1 − δ. The result slice has length g.NumNodes() and result[u] = 1.
//
// g may be a mutable *graph.Graph or an immutable *graph.Snapshot; results
// are bit-identical between the two for the same seed. A *graph.Graph must
// not be mutated while the query runs; concurrent queries on the same view
// are safe. For serving workloads prefer Executor, which adds snapshot
// publication and scratch pooling on top of this entry point.
//
// The query honors ctx and opt.Budget: cancellation, a deadline, or an
// exhausted walk/work budget stops every worker at its next checkpoint
// (amortized every few walk trials and every probe level, so detection
// latency is microseconds of work). A stopped query returns its partial
// estimate together with a non-nil error wrapping the cause — the partial
// vector carries no accuracy guarantee.
func SingleSource(ctx context.Context, g graph.View, u graph.NodeID, opt Options) ([]float64, error) {
	return singleSource(ctx, g, u, opt, nil)
}

func singleSource(ctx context.Context, g graph.View, u graph.NodeID, opt Options, pool *scratchPool) ([]float64, error) {
	return singleSourceInto(ctx, g, u, opt, pool, nil)
}

// singleSourceInto is singleSource with an optional caller-provided result
// buffer: when cap(dst) suffices the answer is written in place and no
// result vector is allocated.
func singleSourceInto(ctx context.Context, g graph.View, u graph.NodeID, opt Options, pool *scratchPool, dst []float64) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("core: query node %d out of range [0, %d)", u, n)
	}
	m := budget.New(ctx, opt.Budget.Timeout, opt.Budget.MaxWalks, opt.Budget.MaxProbeWork)
	if m.Poll() {
		// Dead on arrival: no work was done, so there is no partial result.
		return nil, queryError(u, m)
	}
	g, finish := bindQuery(ctx, g, m)
	plan := planFor(opt, n)
	// One kernel span covers the whole estimator run; the meter's stage
	// totals (walk vs probe) and probe-level counter refine it.
	tr, parent := qtrace.FromContext(ctx)
	kref := tr.StartSpan("kernel", parent)
	tr.Annotate(kref, fmt.Sprintf("mode=%d,walks=%d,workers=%d", plan.Mode, plan.NumWalks, plan.Workers))
	var est []float64
	switch plan.Mode {
	case ModeBasic, ModePruned, ModeRandomized:
		est = runPerWalk(g, u, plan, pool, dst, m)
	case ModeAuto, ModeBatch, ModeHybrid:
		est = runBatched(g, u, plan, pool, dst, m)
	}
	if tr != nil {
		tr.EndSpanAnnot(kref, fmt.Sprintf("walks=%d,work=%d", m.Walks(), m.Work()))
	}
	if plan.Compensate && plan.EpsT > 0 {
		half := plan.EpsT / 2
		for v := range est {
			if est[v] > 0 && est[v]+half <= 1 {
				est[v] += half
			}
		}
	}
	est[u] = 1 // s(u, u) = 1 by definition
	if finish != nil {
		if err := finish(); err != nil {
			// A transport failure outranks whatever the meter latched (it
			// usually IS the meter's cause, via Fail): the partial estimate
			// still comes back for diagnostics, per the budget contract.
			return est, fmt.Errorf("core: query %d: %w", u, err)
		}
	}
	if m.Stopped() {
		return est, queryError(u, m)
	}
	return est, nil
}

// queryError wraps a tripped meter's error with the query identity.
func queryError(u graph.NodeID, m *budget.Meter) error {
	return fmt.Errorf("core: query %d: %w", u, m.Err())
}

// TopK answers an approximate top-k SimRank query (Definition 2): the k
// nodes with the largest estimated similarity to u (excluding u itself),
// in descending score order with node id breaking ties. If the graph has
// fewer than k other nodes, all of them are returned. Cancellation and
// budget semantics follow SingleSource: a stopped query returns the
// ranking of its partial estimate together with the error.
func TopK(ctx context.Context, g graph.View, u graph.NodeID, k int, opt Options) ([]ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	est, err := SingleSource(ctx, g, u, opt)
	if est == nil {
		return nil, err
	}
	return SelectTopK(est, u, k), err
}

// SelectTopK extracts the k highest-scoring nodes from a single-source
// estimate vector, excluding the query node, ordering by descending score
// and ascending node id. It is shared by every algorithm in this
// repository so that ranking semantics are identical across competitors.
func SelectTopK(est []float64, u graph.NodeID, k int) []ScoredNode {
	// Min-heap of size k over (score, node), then sorted descending.
	h := make([]ScoredNode, 0, k)
	less := func(a, b ScoredNode) bool {
		// Heap order: smallest score first; for equal scores the LARGER id
		// is weaker (so ties resolve toward smaller ids in the answer).
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Node > b.Node
	}
	push := func(x ScoredNode) {
		h = append(h, x)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if less(h[i], h[p]) {
				h[i], h[p] = h[p], h[i]
				i = p
			} else {
				break
			}
		}
	}
	popReplace := func(x ScoredNode) {
		h[0] = x
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for v, sc := range est {
		if graph.NodeID(v) == u {
			continue
		}
		cand := ScoredNode{Node: graph.NodeID(v), Score: sc}
		if len(h) < k {
			push(cand)
		} else if less(h[0], cand) {
			popReplace(cand)
		}
	}
	sort.Slice(h, func(i, j int) bool { return less(h[j], h[i]) })
	return h
}

// walkStreamBase offsets the per-trial walk RNG streams: walk trial t of
// a query draws from Split(walkStreamBase + t) of the seed stream, in
// every mode. The base keeps trial streams disjoint from the other
// streams a query derives (per-path probe streams at +0x10000, the
// progressive kernel's 0 and 1). Deriving one independent stream per
// TRIAL — rather than per worker — is what makes results independent of
// the worker count and, crucially, makes every walk's start state known
// before any walk steps: the batched distributed plane ships those states
// N at a time in one WalkBatch RPC.
const walkStreamBase = 1 << 32

// walkWave is how many trials a batched run generates per GenerateMany
// call: large enough to amortize one round trip per owning group across
// hundreds of walks, small enough to keep budget-stop latency low.
const walkWave = 256

// runPerWalk executes the non-batched modes: nr independent trials, each
// generating one √c-walk and probing all of its prefixes. Trials are
// partitioned across workers, each trial drawing from its own seed-derived
// RNG stream (walkStreamBase + trial), so estimates do not depend on the
// worker count. Scratch comes from pool when one is supplied (the
// Executor's steady-state path) and is allocated fresh otherwise.
//
// Each worker checkpoints the shared meter at every trial boundary (one
// atomic load, with a full clock/context poll every checkpoint interval)
// and between the probes of one walk's prefixes; once any worker trips
// the meter, every worker drains out at its next check and the partial
// accumulators merge normally, so scratch always returns to the pool.
func runPerWalk(g graph.View, u graph.NodeID, plan Plan, pool *scratchPool, dst []float64, m *budget.Meter) []float64 {
	n := g.NumNodes()
	workers := plan.Workers
	if workers > plan.NumWalks {
		workers = plan.NumWalks
	}
	if workers < 1 {
		workers = 1
	}
	scs := make([]*queryScratch, workers)
	root := xrand.New(plan.Seed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := plan.NumWalks * w / workers
		hi := plan.NumWalks * (w + 1) / workers
		sc := pool.get(n)
		scs[w] = sc
		wg.Add(1)
		go func(lo, hi int, sc *queryScratch) {
			defer wg.Done()
			acc := sc.acc
			var rng xrand.RNG
			gen := walk.NewGenerator(g, plan.C, &rng)
			gen.SetMeter(m)
			s := sc.det
			s.SetMeter(m)
			buf := sc.buf
			cp := budget.NewCheckpoint(m, budget.DefaultInterval)
			for t := lo; t < hi; t++ {
				if cp.Stop() {
					break
				}
				// The trial stream covers the walk and, for the randomized
				// variant, continues into that trial's probes.
				rng.SetState(root.SplitState(walkStreamBase + uint64(t)))
				buf = gen.Generate(u, plan.MaxWalkNodes, buf)
				clk := m.StageStart() // probe window; walk time is charged inside Generate
				for i := 2; i <= len(buf); i++ {
					if m.Stopped() {
						break
					}
					prefix := buf[:i]
					if plan.Mode == ModeRandomized {
						for _, v := range probe.Randomized(g, prefix, plan.SqrtC, &rng, s) {
							acc[v]++
						}
					} else {
						res := probe.Deterministic(g, prefix, plan.SqrtC, plan.EpsP, s)
						for _, v := range res.Nodes {
							acc[v] += res.Scores[v]
						}
					}
				}
				m.StageEnd(qtrace.StageProbe, clk)
				m.ChargeWalks(1)
			}
			sc.buf = buf
		}(lo, hi, sc)
	}
	wg.Wait()
	return mergeScratch(scs, n, 1/float64(plan.NumWalks), pool, dst)
}

// runBatched executes the batch and hybrid modes: build the reverse
// reachability tree from nr walks (§4.2), then probe each root-to-node
// path once, weighted by how many walks share it. Paths are distributed
// across workers by index.
func runBatched(g graph.View, u graph.NodeID, plan Plan, pool *scratchPool, dst []float64, m *budget.Meter) []float64 {
	n := g.NumNodes()
	rootRNG := xrand.New(plan.Seed)
	// Walk trial t draws from the same per-trial stream the per-walk modes
	// use (walkStreamBase + t), so batching is observably a pure
	// deduplication of probes. Trials are generated in waves: all start
	// states of a wave are known upfront, which lets a batch-aware
	// distributed view advance the whole wave with one RPC per owning
	// group instead of one per walk segment.
	walkSC := pool.get(n)
	tree := walkSC.walkTree(u)
	gen := walk.NewGenerator(g, plan.C, rootRNG)
	gen.SetMeter(m)
	// Tree inserts are cheap relative to probes, so the walk stage polls
	// at a coarser interval; a budget tripping here leaves a partial tree
	// whose paths the (immediately draining) probe stage never expands.
	cpWalk := budget.NewCheckpoint(m, 4*budget.DefaultInterval)
	var (
		states  [walkWave]uint64
		wave    = walkSC.wave
		stopped bool
	)
	for t0 := 0; t0 < plan.NumWalks && !stopped; t0 += walkWave {
		hi := min(t0+walkWave, plan.NumWalks)
		for t := t0; t < hi; t++ {
			states[t-t0] = rootRNG.SplitState(walkStreamBase + uint64(t))
		}
		wave = gen.GenerateMany(u, states[:hi-t0], plan.MaxWalkNodes, wave)
		// Inserts run in trial order: the tree's sibling lists — and so the
		// enumerated path order and per-path probe streams — depend on
		// insertion order.
		for i := range wave {
			if cpWalk.Stop() {
				stopped = true
				break
			}
			if err := tree.Insert(wave[i].Buf); err != nil {
				// Unreachable: walks always start at u.
				panic(err)
			}
			m.ChargeWalks(1)
		}
	}
	walkSC.wave = wave
	// Enumerate paths into the pooled arena; they are consumed before the
	// scratch returns to the pool in mergeScratch.
	paths, arena := tree.AppendPaths(walkSC.paths[:0], walkSC.arena[:0])
	walkSC.paths, walkSC.arena = paths, arena

	hybrid := plan.Mode == ModeHybrid || plan.Mode == ModeAuto
	workers := plan.Workers
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers < 1 {
		workers = 1
	}
	scs := make([]*queryScratch, workers)
	// The walk scratch doubles as worker 0's probe scratch: its accumulator
	// is still zeroed, only its walk buffer was used.
	scs[0] = walkSC
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if scs[w] == nil {
			scs[w] = pool.get(n)
		}
		wg.Add(1)
		go func(w int, sc *queryScratch) {
			defer wg.Done()
			acc := sc.acc
			det := sc.det
			det.SetMeter(m)
			var rnd *probe.Scratch
			if hybrid {
				rnd = sc.randomized()
				rnd.SetMeter(m)
			}
			cp := budget.NewCheckpoint(m, budget.DefaultInterval)
			// One probe window per worker: stage totals aggregate the
			// workers' concurrent probe time (CPU-seconds, not wall clock).
			clk := m.StageStart()
			for pi := w; pi < len(paths); pi += workers {
				if cp.Stop() {
					break
				}
				p := paths[pi]
				// Each path gets its own RNG stream so results do not
				// depend on the worker count.
				rng := rootRNG.Split(uint64(pi) + 0x10000)
				if hybrid {
					probePathHybrid(g, p, plan, acc, det, rnd, rng, m)
				} else {
					res := probe.Deterministic(g, p.Nodes, plan.SqrtC, plan.EpsP, det)
					scale := float64(p.Weight)
					for _, v := range res.Nodes {
						acc[v] += scale * res.Scores[v]
					}
				}
			}
			m.StageEnd(qtrace.StageProbe, clk)
		}(w, scs[w])
	}
	wg.Wait()
	return mergeScratch(scs, n, 1/float64(plan.NumWalks), pool, dst)
}

// probePathHybrid probes one weighted path with the §4.4 strategy: expand
// deterministically while the frontier is cheap; if the next expansion
// would cost more than c0·w·n edge traversals, finish each of the w walk
// replicas with a randomized continuation seeded by Bernoulli(score)
// membership of the current level (unbiased by Lemma 6).
func probePathHybrid(g graph.View, p Path, plan Plan, acc []float64, det, rnd *probe.Scratch, rng *xrand.RNG, m *budget.Meter) {
	workCap := plan.HybridC0 * float64(p.Weight) * float64(len(acc))
	st := probe.NewStepper(g, p.Nodes, plan.SqrtC, plan.EpsP, det)
	for !st.Done() {
		nodes, scores := st.Frontier()
		if float64(st.FrontierOutDegreeSum()) > workCap {
			// Switch: snapshot the frontier, then run weight replicas.
			level := st.Level()
			fNodes := append([]graph.NodeID(nil), nodes...)
			fScores := make([]float64, len(fNodes))
			for i, v := range fNodes {
				fScores[i] = scores[v]
			}
			members := make([]graph.NodeID, 0, len(fNodes))
			for r := int64(0); r < p.Weight; r++ {
				// A heavy path runs one replica per pooled walk; check the
				// shared meter per replica so a huge-weight path cannot
				// outlive the query's deadline by itself.
				if m.Stopped() {
					return
				}
				members = members[:0]
				for i, v := range fNodes {
					if rng.Float64() < fScores[i] {
						members = append(members, v)
					}
				}
				for _, v := range probe.ContinueRandomized(g, p.Nodes, level, members, plan.SqrtC, rng, rnd) {
					acc[v]++
				}
			}
			return
		}
		if m.Stopped() {
			return
		}
		st.Step()
	}
	nodes, scores := st.Frontier()
	scale := float64(p.Weight)
	for _, v := range nodes {
		acc[v] += scale * scores[v]
	}
}

// mergeScratch sums the worker accumulators into the result vector,
// multiplies by scale, and returns every scratch set to the pool. The
// result reuses dst when its capacity suffices and is allocated fresh
// otherwise.
func mergeScratch(scs []*queryScratch, n int, scale float64, pool *scratchPool, dst []float64) []float64 {
	var out []float64
	if cap(dst) >= n {
		out = dst[:n]
		clear(out)
	} else {
		out = make([]float64, n)
	}
	for _, sc := range scs {
		if sc == nil {
			continue
		}
		for i, v := range sc.acc {
			out[i] += v
		}
		pool.put(sc)
	}
	for i := range out {
		out[i] *= scale
	}
	return out
}
