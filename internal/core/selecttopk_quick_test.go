package core

import (
	"sort"
	"testing"
	"testing/quick"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// referenceTopK is the obviously-correct O(n log n) implementation that
// SelectTopK's bounded heap must agree with exactly.
func referenceTopK(est []float64, u graph.NodeID, k int) []ScoredNode {
	var all []ScoredNode
	for v, s := range est {
		if graph.NodeID(v) != u {
			all = append(all, ScoredNode{Node: graph.NodeID(v), Score: s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Property: the heap-based selection equals the sort-based reference for
// random score vectors, including heavy ties.
func TestSelectTopKMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(200)
		est := make([]float64, n)
		for i := range est {
			// Quantize to force ties.
			est[i] = float64(rng.Intn(8)) / 8
		}
		u := graph.NodeID(rng.Intn(n))
		k := 1 + rng.Intn(n+3) // sometimes larger than n-1
		got := SelectTopK(est, u, k)
		want := referenceTopK(est, u, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every returned score actually appears in the estimate vector
// at the returned node, and no excluded node can beat the weakest
// returned one.
func TestSelectTopKSound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(100)
		est := make([]float64, n)
		for i := range est {
			est[i] = rng.Float64()
		}
		u := graph.NodeID(rng.Intn(n))
		k := 1 + rng.Intn(n-1)
		got := SelectTopK(est, u, k)
		inAnswer := map[graph.NodeID]bool{}
		for _, r := range got {
			if est[r.Node] != r.Score || r.Node == u {
				return false
			}
			inAnswer[r.Node] = true
		}
		if len(got) == 0 {
			return true
		}
		weakest := got[len(got)-1].Score
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == u || inAnswer[graph.NodeID(v)] {
				continue
			}
			if est[v] > weakest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
