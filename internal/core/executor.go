package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"probesim/internal/graph"
)

// Executor is the serving-path front end for ProbeSim queries over a
// dynamic graph: a snapshot manager plus a pooled query runner.
//
// It keeps an immutable CSR snapshot (graph.Snapshot) of the underlying
// graph behind an atomic pointer. Queries load the pointer once and run
// entirely against that snapshot — no lock is held, so an edge update can
// never stall a query and a long query can never stall an update. Writers
// mutate the *graph.Graph under their own discipline and then call
// Refresh, which rebuilds the snapshot in O(n+m) and publishes it with a
// single atomic store; queries already in flight keep the snapshot they
// grabbed (a consistent, slightly stale view — exactly what the paper's
// dynamic-graph setting permits, since ProbeSim has no index to patch).
//
// Per-query working memory (dense accumulators, probe frontiers, walk
// buffers — ~56n bytes per worker) comes from a size-keyed sync.Pool, so
// steady-state queries allocate almost nothing beyond their result vector.
//
// Concurrency contract: any number of goroutines may query concurrently.
// Mutating the graph and calling Refresh must be externally serialized
// against other mutations (e.g. internal/server holds its write mutex
// across both), but never against queries.
type Executor struct {
	g    *graph.Graph
	opt  Options
	snap atomic.Pointer[graph.Snapshot]
	mu   sync.Mutex // serializes Refresh against itself
	pool scratchPool
}

// NewExecutor builds an executor over g with the given default query
// options, publishing an initial snapshot of g's current state.
func NewExecutor(g *graph.Graph, opt Options) *Executor {
	e := &Executor{g: g, opt: opt}
	e.snap.Store(g.Snapshot())
	return e
}

// Graph returns the underlying mutable graph. Mutations to it are not
// visible to queries until Refresh publishes a new snapshot.
func (e *Executor) Graph() *graph.Graph { return e.g }

// Options returns the executor's default query options.
func (e *Executor) Options() Options { return e.opt }

// Snapshot returns the currently published snapshot. It never blocks.
func (e *Executor) Snapshot() *graph.Snapshot { return e.snap.Load() }

// Refresh publishes a fresh snapshot if the graph's version moved since
// the last publication and returns the current snapshot either way. The
// caller must ensure no concurrent mutation of the graph while Refresh
// reads it (the same contract as (*Graph).Snapshot).
func (e *Executor) Refresh() *graph.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.snap.Load(); s.Version() == e.g.Version() {
		return s
	}
	s := e.g.Snapshot()
	e.snap.Store(s)
	return s
}

// SingleSource answers a single-source query against the current snapshot
// using pooled scratch. The returned vector is freshly allocated and owned
// by the caller.
func (e *Executor) SingleSource(u graph.NodeID) ([]float64, error) {
	return singleSource(e.snap.Load(), u, e.opt, &e.pool)
}

// TopK answers a top-k query against the current snapshot using pooled
// scratch.
func (e *Executor) TopK(u graph.NodeID, k int) ([]ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	est, err := e.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return SelectTopK(est, u, k), nil
}

// SingleSourceInto answers a single-source query against the current
// snapshot, writing the result into dst when cap(dst) >= NumNodes (and
// allocating otherwise). Combined with the pooled scratch this makes the
// steady-state query path allocation-free up to a handful of fixed-size
// bookkeeping objects; it is meant for callers that consume a vector and
// move on (serializers, aggregators) rather than retain it.
func (e *Executor) SingleSourceInto(u graph.NodeID, dst []float64) ([]float64, error) {
	return singleSourceInto(e.snap.Load(), u, e.opt, &e.pool, dst)
}

// SingleSourceOn runs a single-source query with the executor's scratch
// pool against an explicit view (normally a snapshot previously obtained
// from Snapshot, so a caller can pin one consistent view across several
// queries).
func (e *Executor) SingleSourceOn(v graph.View, u graph.NodeID) ([]float64, error) {
	return singleSource(v, u, e.opt, &e.pool)
}
