package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"probesim/internal/graph"
)

// SnapshotProvider is the snapshot-management seam behind an Executor:
// something that can hand out the currently published immutable view and
// republish it when the underlying mutable graph moved. Two
// implementations exist — the monolithic graphProvider below (one CSR
// snapshot, full O(n+m) rebuild) and the sharded shard.Store (per-shard
// CSR, O(batch + touched shards) republish) — and the executor, querier
// and server are agnostic between them.
type SnapshotProvider interface {
	// PublishedView returns the current published view. Never blocks.
	PublishedView() graph.VersionedView
	// PublishView republishes if the mutable side moved and returns the
	// (possibly unchanged) published view. Callers must serialize it
	// against mutations of the underlying graph, never against readers.
	//
	// A canceled ctx aborts the (re)publication and returns an error with
	// the previously published view: the mutable side keeps its pending
	// changes and the next PublishView picks them up, so cancellation can
	// delay visibility but never corrupt it.
	PublishView(ctx context.Context) (graph.VersionedView, error)
}

// graphProvider is the monolithic SnapshotProvider: one *graph.Snapshot
// behind an atomic pointer, rebuilt in full (in parallel over node
// ranges; see (*graph.Graph).Snapshot) when the graph's version moved.
type graphProvider struct {
	g    *graph.Graph
	mu   sync.Mutex // serializes PublishView against itself
	snap atomic.Pointer[graph.Snapshot]
}

func newGraphProvider(g *graph.Graph) *graphProvider {
	p := &graphProvider{g: g}
	p.snap.Store(g.Snapshot())
	return p
}

func (p *graphProvider) PublishedView() graph.VersionedView { return p.snap.Load() }

func (p *graphProvider) PublishView(ctx context.Context) (graph.VersionedView, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.snap.Load(); s.Version() == p.g.Version() {
		return s, nil
	}
	// The monolithic rebuild is one uninterruptible O(n+m) pass; honor
	// cancellation at the boundary rather than mid-copy.
	if err := ctx.Err(); err != nil {
		return p.snap.Load(), fmt.Errorf("core: snapshot publication aborted: %w", err)
	}
	s := p.g.Snapshot()
	p.snap.Store(s)
	return s, nil
}

// Executor is the serving-path front end for ProbeSim queries over a
// dynamic graph: a snapshot manager plus a pooled query runner.
//
// It serves queries against the immutable view its SnapshotProvider has
// published. Queries load the view once and run entirely against it — no
// lock is held, so an edge update can never stall a query and a long
// query can never stall an update. Writers mutate the underlying graph
// (or shard.Store) under their own discipline and then call Refresh,
// which republishes and installs the new view with a single atomic store;
// queries already in flight keep the view they grabbed (a consistent,
// slightly stale state — exactly what the paper's dynamic-graph setting
// permits, since ProbeSim has no index to patch).
//
// Per-query working memory (dense accumulators, probe frontiers, walk
// buffers, the batch-mode walk tree — ~56n bytes per worker) comes from a
// size-keyed sync.Pool, so steady-state queries allocate almost nothing
// beyond their result vector.
//
// Concurrency contract: any number of goroutines may query concurrently.
// Mutating the graph and calling Refresh must be externally serialized
// against other mutations (e.g. internal/server holds its write mutex
// across both), but never against queries.
type Executor struct {
	src  SnapshotProvider
	opt  Options
	pool scratchPool
}

// NewExecutor builds an executor over g with the given default query
// options, publishing an initial monolithic snapshot of g's current
// state. Mutate g under your own write discipline (never concurrently
// with Refresh) and call Refresh to make mutations visible to queries.
func NewExecutor(g *graph.Graph, opt Options) *Executor {
	return NewExecutorOn(newGraphProvider(g), opt)
}

// NewExecutorOn builds an executor over an external snapshot provider
// (e.g. a shard.Store), which owns publication.
func NewExecutorOn(src SnapshotProvider, opt Options) *Executor {
	return &Executor{src: src, opt: opt}
}

// Snapshot returns the currently published view. It never blocks.
func (e *Executor) Snapshot() graph.VersionedView { return e.src.PublishedView() }

// Refresh publishes a fresh view if the underlying graph's version moved
// since the last publication and returns the current view either way. The
// caller must ensure no concurrent mutation while Refresh reads the
// mutable side (the same contract as (*graph.Graph).Snapshot).
func (e *Executor) Refresh() graph.VersionedView {
	v, _ := e.src.PublishView(context.Background())
	return v
}

// RefreshCtx is Refresh with cancellation: a canceled ctx aborts the
// publication (returning the previously published view and an error) and
// leaves the pending mutations for the next publication. See
// SnapshotProvider.PublishView for the consistency argument.
func (e *Executor) RefreshCtx(ctx context.Context) (graph.VersionedView, error) {
	return e.src.PublishView(ctx)
}

// SingleSource answers a single-source query against the current view
// using pooled scratch. The returned vector is freshly allocated and owned
// by the caller. ctx and the executor options' Budget bound the query; a
// stopped query returns its partial estimate alongside the error (see the
// package-level SingleSource).
func (e *Executor) SingleSource(ctx context.Context, u graph.NodeID) ([]float64, error) {
	return singleSource(ctx, e.src.PublishedView(), u, e.opt, &e.pool)
}

// TopK answers a top-k query against the current view using pooled
// scratch.
func (e *Executor) TopK(ctx context.Context, u graph.NodeID, k int) ([]ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	est, err := e.SingleSource(ctx, u)
	if est == nil {
		return nil, err
	}
	return SelectTopK(est, u, k), err
}

// SingleSourceInto answers a single-source query against the current
// view, writing the result into dst when cap(dst) >= NumNodes (and
// allocating otherwise). Combined with the pooled scratch this makes the
// steady-state query path allocation-free up to a handful of fixed-size
// bookkeeping objects; it is meant for callers that consume a vector and
// move on (serializers, aggregators) rather than retain it.
func (e *Executor) SingleSourceInto(ctx context.Context, u graph.NodeID, dst []float64) ([]float64, error) {
	return singleSourceInto(ctx, e.src.PublishedView(), u, e.opt, &e.pool, dst)
}

// SingleSourceWith answers a single-source query against the current view
// with per-call option overrides, sharing the executor's scratch pool.
// This is the degrade-instead-of-reject seam: under admission pressure
// the server re-runs the standard query shape with a wider εa (fewer
// walks) instead of turning the request away, and the pooled scratch
// keeps even the degraded path allocation-free.
func (e *Executor) SingleSourceWith(ctx context.Context, u graph.NodeID, opt Options) ([]float64, error) {
	return singleSource(ctx, e.src.PublishedView(), u, opt, &e.pool)
}

// SingleSourceOn runs a single-source query with the executor's scratch
// pool against an explicit view (normally a view previously obtained
// from Snapshot, so a caller can pin one consistent view across several
// queries).
func (e *Executor) SingleSourceOn(ctx context.Context, v graph.View, u graph.NodeID) ([]float64, error) {
	return singleSource(ctx, v, u, e.opt, &e.pool)
}

// SingleSourceOnWith combines SingleSourceOn and SingleSourceWith: an
// explicit pinned view AND per-call option overrides, sharing the
// executor's scratch pool. Background work (the hot-source tier's index
// builds) uses it to run against a pinned snapshot generation under its
// own budget and worker count without disturbing the serving defaults.
func (e *Executor) SingleSourceOnWith(ctx context.Context, v graph.View, u graph.NodeID, opt Options) ([]float64, error) {
	return singleSource(ctx, v, u, opt, &e.pool)
}
