package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"probesim/internal/gen"
	"probesim/internal/graph"
)

// TestSnapshotSingleSourceBitIdentical is the behavioral half of the
// snapshot equivalence property: for every execution mode and a fixed
// seed, SingleSource on a CSR snapshot returns bit-identical vectors to
// SingleSource on the slice-of-slice graph, both via the plain entry
// point and via the pooled executor (run twice so the second executor
// query exercises reused scratch).
func TestSnapshotSingleSourceBitIdentical(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 11)
	snap := g.Snapshot()
	for _, mode := range []Mode{ModeAuto, ModeBasic, ModePruned, ModeBatch, ModeRandomized, ModeHybrid} {
		opt := Options{Mode: mode, EpsA: 0.2, Seed: 5, Workers: 4, NumWalks: 300}
		ex := NewExecutor(g, opt)
		for u := graph.NodeID(0); u < 8; u++ {
			want, err := SingleSource(context.Background(), g, u, opt)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			fromSnap, err := SingleSource(context.Background(), snap, u, opt)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			pooled1, err := ex.SingleSource(context.Background(), u)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			pooled2, err := ex.SingleSource(context.Background(), u)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			// Into path with a dirty reused buffer: must be cleared and
			// produce the same vector without reallocating.
			dirty := make([]float64, len(want))
			for i := range dirty {
				dirty[i] = -1
			}
			into, err := ex.SingleSourceInto(context.Background(), u, dirty)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			if &into[0] != &dirty[0] {
				t.Fatalf("mode %v: SingleSourceInto reallocated despite sufficient capacity", mode)
			}
			for _, got := range [][]float64{fromSnap, pooled1, pooled2, into} {
				if len(got) != len(want) {
					t.Fatalf("mode %v u=%d: length %d != %d", mode, u, len(got), len(want))
				}
				for v := range got {
					if got[v] != want[v] {
						t.Fatalf("mode %v u=%d v=%d: snapshot/pooled %v != graph %v",
							mode, u, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestSnapshotEquivalenceUnderChurn re-checks bit-identical results after
// edge insert/remove cycles: mutate, re-snapshot, compare.
func TestSnapshotEquivalenceUnderChurn(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 3)
	opt := Options{EpsA: 0.25, Seed: 9, Workers: 2, NumWalks: 200}
	for round := 0; round < 5; round++ {
		// Churn: remove one existing edge, add two new ones.
		var u graph.NodeID
		for g.OutDegree(u) == 0 {
			u++
		}
		v := g.OutNeighbors(u)[0]
		if err := g.RemoveEdge(u, v); err != nil {
			t.Fatal(err)
		}
		a := graph.NodeID((7*round + 3) % 200)
		b := graph.NodeID((11*round + 57) % 200)
		if a != b {
			if err := g.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
		snap := g.Snapshot()
		q := graph.NodeID(round * 13 % 200)
		want, err := SingleSource(context.Background(), g, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SingleSource(context.Background(), snap, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: snapshot diverges at node %d: %v != %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestExecutorRefresh verifies snapshot publication semantics: stale until
// Refresh, atomic switch after, old snapshots untouched.
func TestExecutorRefresh(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 1)
	ex := NewExecutor(g, Options{EpsA: 0.3, Seed: 2, NumWalks: 50})
	s0 := ex.Snapshot()
	if s0.Version() != g.Version() {
		t.Fatalf("initial snapshot version %d != graph version %d", s0.Version(), g.Version())
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if ex.Snapshot() != s0 {
		t.Fatal("snapshot moved without Refresh")
	}
	s1 := ex.Refresh()
	if s1 == s0 || s1.Version() != g.Version() {
		t.Fatalf("Refresh did not publish the mutated graph (versions: %d vs %d)", s1.Version(), g.Version())
	}
	if ex.Refresh() != s1 {
		t.Fatal("Refresh on an unchanged graph must return the same snapshot")
	}
	if s0.NumEdges() != s1.NumEdges()-1 {
		t.Fatalf("old snapshot mutated: %d edges vs new %d", s0.NumEdges(), s1.NumEdges())
	}
}

// TestScratchPoolReuse checks that the pool actually recycles scratch
// sets (same pointer back on the second get) and keys them by size.
func TestScratchPoolReuse(t *testing.T) {
	var p scratchPool
	s1 := p.get(100)
	p.put(s1)
	s2 := p.get(100)
	if s1 != s2 {
		t.Skip("sync.Pool dropped the entry (GC pressure); nothing to assert")
	}
	for i, x := range s2.acc {
		if x != 0 {
			t.Fatalf("reused accumulator not zeroed at %d", i)
		}
	}
	p.put(s2)
	if s3 := p.get(200); s3.n != 200 || len(s3.acc) != 200 {
		t.Fatalf("pool returned wrong size: n=%d len=%d", s3.n, len(s3.acc))
	}
}

// TestQuerierSingleFlight launches many concurrent misses for one node
// and asserts exactly one computation ran, all callers got the same
// vector, and the shared-flight counter saw the rest.
func TestQuerierSingleFlight(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 21)
	// Workers: 1 inside the query so the concurrency is all at the Querier
	// layer; NumWalks large enough that the flight stays open while the
	// other goroutines arrive.
	q := NewQuerier(g, Options{EpsA: 0.1, Seed: 3, Workers: 1}, 4)

	const callers = 16
	var wg sync.WaitGroup
	results := make([][]float64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores, err := q.SingleSource(context.Background(), 7)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = scores
		}(i)
	}
	wg.Wait()
	hits, misses, _ := q.Stats()
	if misses != 1 {
		t.Fatalf("%d concurrent identical queries ran %d computations, want 1", callers, misses)
	}
	if got := hits + q.SharedFlights(); got != callers-1 {
		t.Fatalf("hits+shared = %d, want %d", got, callers-1)
	}
	for i := 1; i < callers; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d received a different vector than caller 0", i)
		}
	}
}

// TestQuerierStaleSnapshotBypassesCache pins the no-thrash rule: a query
// that grabbed its snapshot before a concurrent writer advanced the cache
// must be served from that old snapshot WITHOUT resetting the (newer)
// cache — rolling q.version backward would wipe the warm cache on every
// slow request that overlaps a write.
func TestQuerierStaleSnapshotBypassesCache(t *testing.T) {
	g := gen.ErdosRenyi(80, 320, 12)
	opt := Options{EpsA: 0.3, Seed: 8, NumWalks: 80}
	q := NewQuerierOn(NewExecutor(g, opt), 4)
	if _, err := q.SingleSource(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	_, _, cachedBefore := q.Stats()
	// Simulate the race deterministically: pretend another goroutine has
	// already advanced the cache past the snapshot this request will grab.
	q.mu.Lock()
	q.version++
	bumped := q.version
	q.mu.Unlock()
	got, err := q.SingleSource(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	ver := q.version
	q.mu.Unlock()
	_, _, cachedAfter := q.Stats()
	if ver != bumped {
		t.Fatalf("stale-snapshot query rolled the cache version back: %d -> %d", bumped, ver)
	}
	if cachedAfter != cachedBefore {
		t.Fatalf("stale-snapshot query disturbed the cache: %d -> %d vectors", cachedBefore, cachedAfter)
	}
	want, err := SingleSource(context.Background(), q.Executor().Snapshot(), 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bypass result diverges at node %d", i)
		}
	}
}

// TestExecutorConcurrentQueryAndRefresh races pooled queries against
// snapshot publication (run with -race in CI): queries must always see a
// consistent snapshot, never a half-mutated graph.
func TestExecutorConcurrentQueryAndRefresh(t *testing.T) {
	g := gen.PreferentialAttachment(200, 3, 8)
	ex := NewExecutor(g, Options{EpsA: 0.3, Seed: 6, Workers: 2, NumWalks: 100})
	var stop atomic.Bool
	var wg sync.WaitGroup
	var mu sync.Mutex // stands in for the server's write mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := ex.SingleSource(context.Background(), graph.NodeID(seed*17%200)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			u := graph.NodeID(i % 199)
			mu.Lock()
			if err := g.AddEdge(u, u+1); err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			ex.Refresh()
			mu.Unlock()
		}
		stop.Store(true)
	}()
	wg.Wait()
	if v := ex.Snapshot().Version(); v != g.Version() {
		t.Fatalf("final snapshot version %d != graph version %d", v, g.Version())
	}
}
