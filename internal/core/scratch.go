package core

import (
	"sync"

	"probesim/internal/graph"
	"probesim/internal/probe"
	"probesim/internal/walk"
)

// queryScratch bundles every reusable buffer one worker needs to run
// ProbeSim trials on a graph with n nodes: the dense score accumulator,
// deterministic and randomized probe scratch, and the walk buffer. At the
// paper's defaults a fresh set is ~56n bytes, which is what every query
// used to allocate per worker; pooling them is where the executor's
// near-zero steady-state allocation comes from.
type queryScratch struct {
	n   int
	acc []float64
	det *probe.Scratch
	rnd *probe.Scratch
	buf []graph.NodeID

	// Batch-mode extras, lazily grown and recycled with the scratch: the
	// reverse-reachability walk tree, the enumerated path headers, and the
	// arena their node sequences pack into. Their sizes track the walk
	// budget rather than n, which is fine — capacity adapts within a pool
	// bucket exactly like the walk buffer does.
	tree  *WalkTree
	paths []Path
	arena []graph.NodeID
	wave  []walk.BatchWalk
}

// walkTree returns the pooled tree reset to root u, allocating it on
// first use.
func (sc *queryScratch) walkTree(u graph.NodeID) *WalkTree {
	if sc.tree == nil {
		sc.tree = NewWalkTree(u)
	} else {
		sc.tree.Reset(u)
	}
	return sc.tree
}

func newQueryScratch(n int) *queryScratch {
	return &queryScratch{
		n:   n,
		acc: make([]float64, n),
		det: probe.NewScratch(n),
	}
}

// randomized returns the lazily allocated second probe scratch the hybrid
// modes need alongside the deterministic one.
func (sc *queryScratch) randomized() *probe.Scratch {
	if sc.rnd == nil {
		sc.rnd = probe.NewScratch(sc.n)
	}
	return sc.rnd
}

// scratchPool hands out queryScratch sets keyed by graph size. A nil
// *scratchPool is valid and always allocates fresh sets (the behavior of
// the plain SingleSource entry point); the Executor owns a real pool.
//
// Sizes are pooled independently so a graph that grows via AddNode does
// not poison the pool: stale sizes simply stop being requested and their
// pools drain under GC pressure like any sync.Pool.
type scratchPool struct {
	pools sync.Map // int (n) -> *sync.Pool
}

// get returns a scratch set for graphs with n nodes. The accumulator is
// zeroed; probe scratch invalidates itself via epochs.
func (p *scratchPool) get(n int) *queryScratch {
	if p == nil {
		return newQueryScratch(n)
	}
	v, ok := p.pools.Load(n)
	if !ok {
		v, _ = p.pools.LoadOrStore(n, &sync.Pool{})
	}
	if s, ok := v.(*sync.Pool).Get().(*queryScratch); ok {
		clear(s.acc)
		return s
	}
	return newQueryScratch(n)
}

// put returns a scratch set to the pool, dropping any cached view
// resolution first so a parked scratch never pins a retired snapshot
// generation in memory, and detaching any budget meter so a recycled
// scratch can never observe a previous query's expiry. No-op on a nil
// pool.
func (p *scratchPool) put(s *queryScratch) {
	if p == nil || s == nil {
		return
	}
	s.det.ReleaseView()
	s.det.SetMeter(nil)
	if s.rnd != nil {
		s.rnd.ReleaseView()
		s.rnd.SetMeter(nil)
	}
	if v, ok := p.pools.Load(s.n); ok {
		v.(*sync.Pool).Put(s)
	}
}
