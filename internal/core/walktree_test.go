package core

import (
	"testing"
	"testing/quick"

	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// §4.2 running example (Figure 3): insert (a,b,c), (a,c,a), then (a,b,a).
// Resulting weights: root a=3, b=2, c(under b)=1, c(under a)=1, a(under c)=1,
// a(under b)=1.
func TestWalkTreePaperExample(t *testing.T) {
	a, b, c := graph.ToyA, graph.ToyB, graph.ToyC
	tree := NewWalkTree(a)
	for _, w := range [][]graph.NodeID{{a, b, c}, {a, c, a}, {a, b, a}} {
		if err := tree.Insert(w); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Walks() != 3 {
		t.Fatalf("walks = %d, want 3", tree.Walks())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range tree.Paths() {
		key := ""
		for _, v := range p.Nodes {
			key += graph.ToyNames[v]
		}
		got[key] = p.Weight
	}
	want := map[string]int64{
		"ab": 2, "abc": 1, "aba": 1, "ac": 1, "aca": 1,
	}
	if len(got) != len(want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("weight(%s) = %d, want %d", k, got[k], w)
		}
	}
}

func TestWalkTreeRejectsWrongRoot(t *testing.T) {
	tree := NewWalkTree(3)
	if err := tree.Insert([]graph.NodeID{4, 5}); err == nil {
		t.Fatal("walk with wrong root accepted")
	}
	if err := tree.Insert(nil); err == nil {
		t.Fatal("empty walk accepted")
	}
}

func TestWalkTreeSingleNodeWalks(t *testing.T) {
	tree := NewWalkTree(0)
	for i := 0; i < 5; i++ {
		if err := tree.Insert([]graph.NodeID{0}); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Walks() != 5 || tree.Len() != 1 {
		t.Fatalf("walks=%d len=%d, want 5 and 1", tree.Walks(), tree.Len())
	}
	if paths := tree.Paths(); len(paths) != 0 {
		t.Fatalf("single-node walks must yield no probe paths, got %d", len(paths))
	}
}

// Property: for random walk sets, (a) tree invariants hold, (b) every
// distinct prefix appears exactly once as a path, (c) each path's weight
// equals the number of walks having that prefix, and (d) total probe work
// equals the deduplicated prefix count.
func TestWalkTreeMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomGraph(rng, 20, 80)
		gen := walk.NewGenerator(g, 0.7, rng)
		tree := NewWalkTree(0)
		var walks [][]graph.NodeID
		for i := 0; i < 50; i++ {
			w := append([]graph.NodeID(nil), gen.Generate(0, 8, nil)...)
			walks = append(walks, w)
			if err := tree.Insert(w); err != nil {
				return false
			}
		}
		if tree.checkInvariants() != nil {
			return false
		}
		// Brute-force prefix counts.
		wantCounts := map[string]int64{}
		for _, w := range walks {
			for i := 2; i <= len(w); i++ {
				wantCounts[pathKey(w[:i])]++
			}
		}
		paths := tree.Paths()
		if len(paths) != len(wantCounts) {
			return false
		}
		for _, p := range paths {
			if wantCounts[pathKey(p.Nodes)] != p.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func pathKey(p []graph.NodeID) string {
	key := make([]byte, 0, len(p)*4)
	for _, v := range p {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(key)
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// TestAppendPathsMatchesPaths checks the pooled enumeration against the
// allocating one — same paths, same order, same weights — including
// across Reset reuse (the executor's steady-state pattern).
func TestAppendPathsMatchesPaths(t *testing.T) {
	rng := xrand.New(404)
	var tree *WalkTree
	var paths []Path
	var arena []graph.NodeID
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 20, 60)
		u := graph.NodeID(rng.Intn(20))
		if tree == nil {
			tree = NewWalkTree(u)
		} else {
			tree.Reset(u)
		}
		gen := walk.NewGenerator(g, 0.6, rng)
		var buf []graph.NodeID
		for i := 0; i < 30; i++ {
			buf = gen.Generate(u, 10, buf)
			if err := tree.Insert(buf); err != nil {
				t.Fatal(err)
			}
		}
		want := tree.Paths()
		paths, arena = tree.AppendPaths(paths[:0], arena[:0])
		if len(paths) != len(want) {
			t.Fatalf("trial %d: %d pooled paths, want %d", trial, len(paths), len(want))
		}
		for i := range want {
			if paths[i].Weight != want[i].Weight {
				t.Fatalf("trial %d path %d: weight %d != %d", trial, i, paths[i].Weight, want[i].Weight)
			}
			if len(paths[i].Nodes) != len(want[i].Nodes) {
				t.Fatalf("trial %d path %d: length %d != %d", trial, i, len(paths[i].Nodes), len(want[i].Nodes))
			}
			for j := range want[i].Nodes {
				if paths[i].Nodes[j] != want[i].Nodes[j] {
					t.Fatalf("trial %d path %d node %d: %d != %d",
						trial, i, j, paths[i].Nodes[j], want[i].Nodes[j])
				}
			}
		}
		if err := tree.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
