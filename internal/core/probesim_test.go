package core

import (
	"context"
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

var allModes = []Mode{ModeAuto, ModeBasic, ModePruned, ModeBatch, ModeRandomized, ModeHybrid}

func TestPlanTheorem2Budget(t *testing.T) {
	for _, mode := range allModes {
		plan, err := PlanFor(Options{Mode: mode, EpsA: 0.08, C: 0.6}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		sqrtC := math.Sqrt(0.6)
		total := plan.Eps + (1+plan.Eps)/(1-sqrtC)*plan.EpsP + plan.EpsT/2
		if total > 0.08+1e-12 {
			t.Errorf("mode %v: error budget %v exceeds εa", mode, total)
		}
		if plan.NumWalks <= 0 {
			t.Errorf("mode %v: non-positive walk count", mode)
		}
	}
}

func TestPlanWalkCountFormula(t *testing.T) {
	plan, err := PlanFor(Options{Mode: ModeBasic, EpsA: 0.1, Delta: 0.01, C: 0.6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(3 * 0.6 / (0.1 * 0.1) * math.Log(100/0.01)))
	if plan.NumWalks != want {
		t.Fatalf("nr = %d, want %d", plan.NumWalks, want)
	}
}

func TestPlanOverrides(t *testing.T) {
	plan, err := PlanFor(Options{NumWalks: 77}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumWalks != 77 {
		t.Fatalf("NumWalks override ignored: %d", plan.NumWalks)
	}
}

func TestOptionValidation(t *testing.T) {
	g := graph.Toy()
	bad := []Options{
		{C: 1.5}, {C: -1}, {EpsA: 2}, {Delta: 2}, {Mode: Mode(99)},
	}
	for _, o := range bad {
		if _, err := SingleSource(context.Background(), g, 0, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if _, err := SingleSource(context.Background(), g, 99, Options{}); err == nil {
		t.Error("out-of-range query node accepted")
	}
	if _, err := TopK(context.Background(), g, 0, 0, Options{}); err == nil {
		t.Error("k = 0 accepted")
	}
}

// End-to-end εa guarantee against the Power Method ground truth, for every
// mode, on the toy graph (c = 0.25 as in the paper's example).
func TestGuaranteeToyGraph(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes {
		est, err := SingleSource(context.Background(), g, graph.ToyA, Options{
			C: 0.25, EpsA: 0.05, Delta: 0.01, Mode: mode, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range est {
			if d := math.Abs(est[v] - exact[v]); d > 0.05 {
				t.Errorf("mode %v: |s̃(a,%s) − s| = %.4f > εa", mode, graph.ToyNames[v], d)
			}
		}
	}
}

// The same guarantee on random graphs with the paper's default c = 0.6.
func TestGuaranteeRandomGraph(t *testing.T) {
	rng := xrand.New(2024)
	g := randomGraph(rng, 60, 400)
	m, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes {
		for _, u := range []graph.NodeID{3, 17, 42} {
			est, err := SingleSource(context.Background(), g, u, Options{
				C: 0.6, EpsA: 0.1, Delta: 0.01, Mode: mode, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for v := range est {
				if d := math.Abs(est[v] - m.At(u, graph.NodeID(v))); d > worst {
					worst = d
				}
			}
			if worst > 0.1 {
				t.Errorf("mode %v source %d: max error %.4f > εa", mode, u, worst)
			}
		}
	}
}

// Estimates are probabilities.
func TestEstimatesInRange(t *testing.T) {
	rng := xrand.New(8)
	g := randomGraph(rng, 40, 150)
	for _, mode := range allModes {
		est, err := SingleSource(context.Background(), g, 0, Options{Mode: mode, EpsA: 0.2, NumWalks: 300})
		if err != nil {
			t.Fatal(err)
		}
		if est[0] != 1 {
			t.Errorf("mode %v: s̃(u,u) = %v, want 1", mode, est[0])
		}
		for v, s := range est {
			if s < 0 || s > 1+1e-9 {
				t.Errorf("mode %v: s̃(u,%d) = %v out of range", mode, v, s)
			}
		}
	}
}

// A query node with no in-neighbors has s(u, v) = 0 for all v != u.
func TestZeroInDegreeSource(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, mode := range allModes {
		est, err := SingleSource(context.Background(), g, 0, Options{Mode: mode, NumWalks: 100})
		if err != nil {
			t.Fatal(err)
		}
		for v := 1; v < 4; v++ {
			if est[v] != 0 {
				t.Errorf("mode %v: s̃(0,%d) = %v, want 0", mode, v, est[v])
			}
		}
	}
}

// Same seed, same configuration → identical output (replayability).
func TestDeterministicResults(t *testing.T) {
	rng := xrand.New(3)
	g := randomGraph(rng, 50, 250)
	for _, mode := range allModes {
		opt := Options{Mode: mode, EpsA: 0.15, Seed: 11, Workers: 3, NumWalks: 500}
		a, err := SingleSource(context.Background(), g, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SingleSource(context.Background(), g, 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("mode %v: result not reproducible at node %d", mode, v)
			}
		}
	}
}

// Batched modes are worker-count invariant: the walk tree is built
// sequentially and each path owns a seed-derived RNG stream.
func TestBatchWorkerInvariance(t *testing.T) {
	rng := xrand.New(4)
	g := randomGraph(rng, 50, 250)
	for _, mode := range []Mode{ModeBatch, ModeHybrid, ModeAuto} {
		a, err := SingleSource(context.Background(), g, 2, Options{Mode: mode, Seed: 9, Workers: 1, NumWalks: 400})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SingleSource(context.Background(), g, 2, Options{Mode: mode, Seed: 9, Workers: 7, NumWalks: 400})
		if err != nil {
			t.Fatal(err)
		}
		// Worker count only changes floating-point merge order, so results
		// agree to within accumulation round-off.
		for v := range a {
			if math.Abs(a[v]-b[v]) > 1e-12 {
				t.Fatalf("mode %v: workers changed result at node %d: %v vs %v", mode, v, a[v], b[v])
			}
		}
	}
}

// Batch mode must agree exactly with pruned per-walk mode when given the
// same seed: the tree only deduplicates probes, it does not change them.
func TestBatchEquivalentToPruned(t *testing.T) {
	rng := xrand.New(6)
	g := randomGraph(rng, 40, 200)
	// Workers=1 so the per-walk mode consumes the RNG in the same order as
	// the batch mode's tree construction.
	optA := Options{Mode: ModePruned, Seed: 21, Workers: 1, NumWalks: 300}
	optB := Options{Mode: ModeBatch, Seed: 21, Workers: 1, NumWalks: 300}
	a, err := SingleSource(context.Background(), g, 7, optA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSource(context.Background(), g, 7, optB)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9 {
			t.Fatalf("batch diverged from per-walk at node %d: %v vs %v", v, a[v], b[v])
		}
	}
}

// Hybrid with an enormous switch constant never switches, so it must agree
// exactly with plain batch mode.
func TestHybridNoSwitchMatchesBatch(t *testing.T) {
	rng := xrand.New(14)
	g := randomGraph(rng, 40, 200)
	a, err := SingleSource(context.Background(), g, 1, Options{Mode: ModeBatch, Seed: 3, NumWalks: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSource(context.Background(), g, 1, Options{Mode: ModeHybrid, Seed: 3, NumWalks: 300, HybridC0: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("hybrid(no-switch) diverged at node %d", v)
		}
	}
}

// Hybrid with a tiny switch constant always switches, becoming a batched
// randomized estimator; it must still satisfy the error guarantee.
func TestHybridAlwaysSwitchAccuracy(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	est, err := SingleSource(context.Background(), g, graph.ToyA, Options{
		C: 0.25, EpsA: 0.05, Mode: ModeHybrid, Seed: 13, HybridC0: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range est {
		if d := math.Abs(est[v] - exact[v]); d > 0.05 {
			t.Errorf("always-switch hybrid: error %.4f at %s", d, graph.ToyNames[v])
		}
	}
}

func TestCompensateTruncation(t *testing.T) {
	rng := xrand.New(15)
	g := randomGraph(rng, 30, 120)
	base, err := SingleSource(context.Background(), g, 0, Options{Mode: ModePruned, Seed: 2, NumWalks: 200})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := SingleSource(context.Background(), g, 0, Options{Mode: ModePruned, Seed: 2, NumWalks: 200, CompensateTruncation: true})
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := PlanFor(Options{Mode: ModePruned}, g.NumNodes())
	bumped := false
	for v := range base {
		if v == 0 {
			continue
		}
		switch {
		case base[v] == 0:
			if comp[v] != 0 {
				t.Fatalf("compensation invented mass at %d", v)
			}
		case comp[v] > base[v]:
			if math.Abs(comp[v]-base[v]-plan.EpsT/2) > 1e-12 {
				t.Fatalf("compensation at %d is %v, want εt/2 = %v", v, comp[v]-base[v], plan.EpsT/2)
			}
			bumped = true
		}
	}
	if !bumped {
		t.Fatal("compensation never applied")
	}
}

func TestTopKOrderingAndClamp(t *testing.T) {
	g := graph.Toy()
	res, err := TopK(context.Background(), g, graph.ToyA, 3, Options{C: 0.25, EpsA: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("top-3 returned %d entries", len(res))
	}
	// Table 2 says the true top-3 w.r.t. a is d (0.131), e (0.070), then
	// g/h (0.051 each); with εa = 0.02 the top-2 must be exact.
	if res[0].Node != graph.ToyD || res[1].Node != graph.ToyE {
		t.Fatalf("top-3 = %v, want d then e first", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("scores not descending")
		}
	}
	// k larger than n-1 clamps.
	all, err := TopK(context.Background(), g, graph.ToyA, 100, Options{C: 0.25, EpsA: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumNodes()-1 {
		t.Fatalf("clamped top-k returned %d entries, want %d", len(all), g.NumNodes()-1)
	}
	for _, r := range all {
		if r.Node == graph.ToyA {
			t.Fatal("query node included in top-k")
		}
	}
}

func TestSelectTopK(t *testing.T) {
	est := []float64{1, 0.5, 0.9, 0.5, 0.1, 0}
	got := SelectTopK(est, 0, 3)
	want := []ScoredNode{{2, 0.9}, {1, 0.5}, {3, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Ties break toward smaller ids even across the heap boundary.
	got = SelectTopK([]float64{1, 0.5, 0.5, 0.5, 0.5}, 0, 2)
	if got[0].Node != 1 || got[1].Node != 2 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

func TestModeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allModes {
		s := m.String()
		if s == "" || seen[s] {
			t.Fatalf("mode %d has bad name %q", int(m), s)
		}
		seen[s] = true
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode must still stringify")
	}
}
