package core

// Progressive (any-time) top-k: an extension in the spirit of the paper's
// conclusion ("lightweight approaches ... with higher effectiveness"). The
// static bound runs nr = 3c/ε²·ln(n/δ) walks no matter what the query
// looks like; but a top-k query does not need uniformly small error — it
// needs the k-th and (k+1)-th candidates *separated*. TopKProgressive runs
// walks in doubling rounds and maintains per-candidate empirical-Bernstein
// confidence radii (Maurer & Pontil 2009), which shrink with the actual
// estimator variance rather than the worst case: per-trial estimates are
// tiny probabilities for almost every node, so their radii collapse orders
// of magnitude faster than the Chernoff radius the static bound plans for.
// The failure budget is split δ_R = δ/(R(R+1)) across rounds so stopping
// at any round is sound, and union-bounded over the n candidates.
//
// The query stops as soon as
//
//   - every node in the current top-k set has a lower confidence bound at
//     least the highest upper bound outside the set (the top-k set is then
//     exactly right with probability 1 − δ, regardless of εa), or
//   - 2·max_v radius(v) <= εa (Definition 2 satisfied via the ranking
//     argument: s(u,v_i) >= s̃(v_i) − r(v_i) >= s̃(v'_i) − r(v_i) >=
//     s(u,v'_i) − r(v_i) − r(v'_i)), or
//   - the static walk budget is exhausted (never worse than TopK in walk
//     count).
//
// On well-separated queries this uses a small fraction of the static walk
// budget; the E-A12 experiment and its benchmark quantify it.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/probe"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// ProgressiveStats reports how a progressive query stopped.
type ProgressiveStats struct {
	// Walks is the number of √c-walk trials actually run.
	Walks int
	// BudgetWalks is the static bound nr the query was allowed.
	BudgetWalks int
	// Rounds is the number of doubling rounds.
	Rounds int
	// Radius is the largest confidence radius among the returned nodes:
	// each returned estimate is within Radius of the truth with
	// probability 1 − δ.
	Radius float64
	// Separated reports whether the run stopped on rank separation
	// (true) rather than on reaching the εa radius or the budget.
	Separated bool
}

// progressiveStartWalks is the first round's walk count; rounds double
// from here. Small enough that easy queries stop almost immediately, large
// enough that first-round variance estimates are meaningful.
const progressiveStartWalks = 256

// TopKProgressive answers an approximate top-k query (Definition 2) with
// adaptive cost: it satisfies the same guarantee as TopK with parameters
// (εa, δ), but stops early when the ranking separates or the per-node
// radii beat εa. Only the per-walk modes run progressively; Mode is
// coerced to ModePruned unless ModeBasic or ModeRandomized was asked for
// explicitly.
// g may be a mutable *graph.Graph or an immutable *graph.Snapshot (the
// server runs progressive queries against lock-free snapshots).
//
// The query honors ctx and opt.Budget at every walk-trial checkpoint. A
// stopped run with at least two completed trials returns the current
// ranking (with its confidence radius in stats) alongside the error;
// earlier stops return no ranking.
func TopKProgressive(ctx context.Context, g graph.View, u graph.NodeID, k int, opt Options) (res []ScoredNode, stats ProgressiveStats, err error) {
	if k <= 0 {
		return nil, ProgressiveStats{}, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, ProgressiveStats{}, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, ProgressiveStats{}, fmt.Errorf("core: query node %d out of range [0, %d)", u, n)
	}
	switch opt.Mode {
	case ModeBasic, ModeRandomized:
		// keep
	default:
		opt.Mode = ModePruned
	}
	plan := planFor(opt, n)

	m := budget.New(ctx, opt.Budget.Timeout, opt.Budget.MaxWalks, opt.Budget.MaxProbeWork)
	g, finish := bindQuery(ctx, g, m)
	if finish != nil {
		defer func() {
			// A transport failure during the progressive rounds outranks the
			// meter's cause (it usually IS that cause, via Fail); the partial
			// ranking still goes back for diagnostics.
			if ferr := finish(); ferr != nil {
				err = fmt.Errorf("core: query %d: %w", u, ferr)
			}
		}()
	}
	st := newProgressiveState(n)
	gen := walk.NewGenerator(g, plan.C, xrand.New(plan.Seed).Split(0))
	gen.SetMeter(m)
	rng := xrand.New(plan.Seed).Split(1)
	scratch := probe.NewScratch(n)
	scratch.SetMeter(m)
	var buf []graph.NodeID

	stats = ProgressiveStats{BudgetWalks: plan.NumWalks}
	cp := budget.NewCheckpoint(m, budget.DefaultInterval)
	target := progressiveStartWalks
	if target > plan.NumWalks {
		target = plan.NumWalks
	}
	for {
		for stats.Walks < target {
			if cp.Stop() {
				// Evaluate whatever the completed trials support, so the
				// caller gets a best-effort ranking with its radius next to
				// the cancellation error. Fewer than two trials cannot even
				// produce a variance estimate — return nothing.
				if stats.Walks < 2 {
					return nil, stats, queryError(u, m)
				}
				stats.Rounds++
				top, maxTopRadius, _, _ := st.evaluate(u, k, stats.Walks, stats.Rounds, opt.Delta, float64(n))
				stats.Radius = maxTopRadius
				return top, stats, queryError(u, m)
			}
			buf = gen.Generate(u, plan.MaxWalkNodes, buf)
			st.beginTrial()
			for i := 2; i <= len(buf); i++ {
				if m.Stopped() {
					// Mid-trial trip: the remaining prefixes would probe to
					// empty results anyway; stop now. The prefixes already
					// probed carry valid (final-level) scores, so the trial
					// still counts as a partial, underestimating one.
					break
				}
				prefix := buf[:i]
				if plan.Mode == ModeRandomized {
					for _, v := range probe.Randomized(g, prefix, plan.SqrtC, rng, scratch) {
						st.add(v, 1)
					}
				} else {
					res := probe.Deterministic(g, prefix, plan.SqrtC, plan.EpsP, scratch)
					for _, v := range res.Nodes {
						st.add(v, res.Scores[v])
					}
				}
			}
			st.endTrial()
			stats.Walks++
			m.ChargeWalks(1)
		}
		stats.Rounds++

		top, maxTopRadius, separated, maxRadius := st.evaluate(u, k, stats.Walks, stats.Rounds, opt.Delta, float64(n))
		stats.Radius = maxTopRadius
		switch {
		case separated:
			stats.Separated = true
			return top, stats, nil
		case 2*maxRadius <= opt.EpsA:
			return top, stats, nil
		case stats.Walks >= plan.NumWalks:
			// Static budget reached: Theorem 1's guarantee applies; the
			// reported per-node radius is usually far tighter.
			return top, stats, nil
		}
		target *= 2
		if target > plan.NumWalks {
			target = plan.NumWalks
		}
	}
}

// progressiveState accumulates per-node first and second moments of the
// per-trial estimators, touching only the nodes each trial actually
// scored.
type progressiveState struct {
	sum     []float64 // Σ_k s̃_k(v)
	sumSq   []float64 // Σ_k s̃_k(v)²
	trial   []float64 // current trial's partial sum per node
	touched []graph.NodeID
	mark    []bool
}

func newProgressiveState(n int) *progressiveState {
	return &progressiveState{
		sum:   make([]float64, n),
		sumSq: make([]float64, n),
		trial: make([]float64, n),
		mark:  make([]bool, n),
	}
}

func (st *progressiveState) beginTrial() { st.touched = st.touched[:0] }

func (st *progressiveState) add(v graph.NodeID, score float64) {
	if !st.mark[v] {
		st.mark[v] = true
		st.touched = append(st.touched, v)
	}
	st.trial[v] += score
}

func (st *progressiveState) endTrial() {
	for _, v := range st.touched {
		x := st.trial[v]
		st.sum[v] += x
		st.sumSq[v] += x * x
		st.trial[v] = 0
		st.mark[v] = false
	}
}

// evaluate computes per-node empirical-Bernstein radii at trial count t
// and round R, selects the top-k by estimate, and reports:
// the top-k with estimates, the max radius inside the top-k, whether the
// set separates from the rest, and the max radius over all nodes (for the
// Definition-2 stop).
func (st *progressiveState) evaluate(u graph.NodeID, k int, t, round int, delta, nn float64) ([]ScoredNode, float64, bool, float64) {
	if nn < 2 {
		nn = 2
	}
	// Maurer–Pontil with the budget split over nodes and rounds:
	// r_v = sqrt(2·V̂_v·L/t) + 7L/(3(t−1)),
	// L = ln(2·n·R·(R+1)/δ).
	r := float64(round)
	L := math.Log(2 * nn * r * (r + 1) / delta)
	tf := float64(t)
	slack := 7 * L / (3 * (tf - 1))

	n := len(st.sum)
	est := make([]float64, n)
	radius := func(v int) float64 {
		mean := st.sum[v] / tf
		variance := (st.sumSq[v] - st.sum[v]*mean) / (tf - 1)
		if variance < 0 {
			variance = 0
		}
		return math.Sqrt(2*variance*L/tf) + slack
	}
	for v := range est {
		est[v] = st.sum[v] / tf
	}
	if int(u) < n {
		est[u] = 1
	}
	top := SelectTopK(est, u, k)

	var maxTop, minLower float64
	minLower = math.Inf(1)
	inTop := make(map[graph.NodeID]bool, len(top))
	for _, s := range top {
		rv := radius(int(s.Node))
		if rv > maxTop {
			maxTop = rv
		}
		if lo := s.Score - rv; lo < minLower {
			minLower = lo
		}
		inTop[s.Node] = true
	}
	// Highest upper bound outside the top-k, and the global max radius.
	var maxUpper, maxRadius float64
	maxRadius = maxTop
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == u || inTop[graph.NodeID(v)] {
			continue
		}
		rv := radius(v)
		if rv > maxRadius {
			maxRadius = rv
		}
		if hi := est[v] + rv; hi > maxUpper {
			maxUpper = hi
		}
	}
	separated := len(top) > 0 && minLower >= maxUpper
	// Keep the output order contract of SelectTopK (already sorted).
	sort.SliceStable(top, func(i, j int) bool {
		if top[i].Score != top[j].Score {
			return top[i].Score > top[j].Score
		}
		return top[i].Node < top[j].Node
	})
	return top, maxTop, separated, maxRadius
}
