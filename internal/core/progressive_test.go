package core

import (
	"context"
	"math"
	"testing"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
)

// tieredGraph builds a graph where node 0's similarity ranking has a large
// gap: nodes 1 and 2 share both in-neighbors with 0 (high similarity),
// everything else is background noise far below.
func tieredGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.ErdosRenyi(200, 800, 3)
	// Make {100, 101} the trio's ENTIRE in-neighborhood: drop whatever
	// in-edges the random background gave nodes 0-2 first, so the trio
	// shares its in-neighborhood exactly and separates from the rest.
	for _, child := range []graph.NodeID{0, 1, 2} {
		for _, parent := range append([]graph.NodeID(nil), g.InNeighbors(child)...) {
			if err := g.RemoveEdge(parent, child); err != nil {
				t.Fatal(err)
			}
		}
		for _, parent := range []graph.NodeID{100, 101} {
			if err := g.AddEdge(parent, child); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestProgressiveStopsEarlyOnSeparation(t *testing.T) {
	g := tieredGraph(t)
	opt := Options{EpsA: 0.01, Delta: 0.01, Seed: 7} // tight εa = huge static budget
	top, stats, err := TopKProgressive(context.Background(), g, 0, 2, opt)
	if err != nil {
		t.Fatalf("TopKProgressive: %v", err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d results, want 2", len(top))
	}
	got := map[graph.NodeID]bool{top[0].Node: true, top[1].Node: true}
	if !got[1] || !got[2] {
		t.Fatalf("top-2 = %v, want nodes 1 and 2", top)
	}
	if !stats.Separated {
		t.Fatalf("expected separation stop, got %+v", stats)
	}
	if stats.Walks >= stats.BudgetWalks/4 {
		t.Fatalf("progressive used %d of %d walks; expected a large saving on a separated query",
			stats.Walks, stats.BudgetWalks)
	}
}

func TestProgressiveDefinition2Guarantee(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 11)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{EpsA: 0.05, Delta: 0.01, Seed: 3}
	k := 10
	for _, u := range []graph.NodeID{1, 17, 42} {
		top, stats, err := TopKProgressive(context.Background(), g, u, k, opt)
		if err != nil {
			t.Fatalf("TopKProgressive(context.Background(), %d): %v", u, err)
		}
		// Exact k-th ranked similarity.
		exact := append([]float64(nil), truth.Row(u)...)
		exact[u] = -1
		for i := range top {
			// Definition 2: s(u, v_i) >= s(u, v'_i) − εa.
			kthBest := nthLargest(exact, i+1)
			if truth.At(u, top[i].Node) < kthBest-opt.EpsA {
				t.Fatalf("u=%d rank %d: s=%v < ideal %v − εa (stats %+v)",
					u, i+1, truth.At(u, top[i].Node), kthBest, stats)
			}
			// Value guarantee: estimate within the reported radius.
			if d := math.Abs(top[i].Score - truth.At(u, top[i].Node)); d > stats.Radius {
				t.Fatalf("u=%d rank %d: |est−s| = %v exceeds radius %v", u, i+1, d, stats.Radius)
			}
		}
	}
}

func nthLargest(vals []float64, n int) float64 {
	cp := append([]float64(nil), vals...)
	for i := 0; i < n; i++ {
		maxAt := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] > cp[maxAt] {
				maxAt = j
			}
		}
		cp[i], cp[maxAt] = cp[maxAt], cp[i]
	}
	return cp[n-1]
}

func TestProgressiveNeverExceedsStaticBudget(t *testing.T) {
	g := gen.ErdosRenyi(60, 240, 5)
	// Loose εa keeps the static budget small; a hard query (many ties)
	// must stop at the budget, not loop.
	opt := Options{EpsA: 0.2, Delta: 0.1, Seed: 1}
	_, stats, err := TopKProgressive(context.Background(), g, 2, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Walks > stats.BudgetWalks {
		t.Fatalf("used %d walks, budget %d", stats.Walks, stats.BudgetWalks)
	}
	if stats.Rounds < 1 || stats.Radius <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestProgressiveValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 1)
	if _, _, err := TopKProgressive(context.Background(), g, 0, 0, Options{}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, _, err := TopKProgressive(context.Background(), g, -1, 3, Options{}); err == nil {
		t.Error("negative node accepted")
	}
	if _, _, err := TopKProgressive(context.Background(), g, 0, 3, Options{EpsA: 5}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestProgressiveDeterministicForSeed(t *testing.T) {
	g := gen.PreferentialAttachment(50, 3, 9)
	opt := Options{EpsA: 0.05, Seed: 21}
	a, sa, err := TopKProgressive(context.Background(), g, 1, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := TopKProgressive(context.Background(), g, 1, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProgressiveAgreesWithTopK(t *testing.T) {
	// With separation disabled by construction (identical scores among the
	// trio), progressive still returns nodes whose true scores match the
	// static TopK's within 2·εa.
	g := tieredGraph(t)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{EpsA: 0.03, Seed: 13}
	stat, err := TopK(context.Background(), g, 0, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := TopKProgressive(context.Background(), g, 0, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		ts := truth.At(0, stat[i].Node)
		tp := truth.At(0, prog[i].Node)
		if math.Abs(ts-tp) > 2*opt.EpsA {
			t.Fatalf("rank %d: static picked s=%v, progressive s=%v; gap exceeds 2εa", i+1, ts, tp)
		}
	}
}

func TestProgressiveSmallGraphKLargerThanN(t *testing.T) {
	g := gen.Cycle(4)
	top, _, err := TopKProgressive(context.Background(), g, 0, 10, Options{EpsA: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d results on a 4-node graph, want 3", len(top))
	}
}

func TestProgressiveRandomizedMode(t *testing.T) {
	// The randomized-probe branch must keep the Definition 2 guarantee.
	g := gen.ErdosRenyi(60, 300, 7)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{EpsA: 0.08, Delta: 0.01, Seed: 5, Mode: ModeRandomized}
	top, stats, err := TopKProgressive(context.Background(), g, 3, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Walks < 1 || stats.Walks > stats.BudgetWalks {
		t.Fatalf("walks %d outside [1, %d]", stats.Walks, stats.BudgetWalks)
	}
	exact := append([]float64(nil), truth.Row(3)...)
	exact[3] = -1
	for i := range top {
		if truth.At(3, top[i].Node) < nthLargest(exact, i+1)-opt.EpsA {
			t.Fatalf("rank %d violates Definition 2 in randomized mode", i+1)
		}
	}
}

func TestProgressiveModeCoercion(t *testing.T) {
	// Batch modes have no progressive benefit; they must run (coerced to
	// pruned) rather than error.
	g := gen.Cycle(10)
	for _, m := range []Mode{ModeAuto, ModeBatch, ModeHybrid} {
		if _, _, err := TopKProgressive(context.Background(), g, 0, 2, Options{EpsA: 0.1, Seed: 1, Mode: m}); err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
	}
}
