package core

// Cancellation and budget tests for the query kernels: a canceled or
// budget-stopped query must (a) return promptly — bounded by the
// checkpoint interval, not by the remaining walk budget, (b) carry an
// error that unwraps to the right cause, and (c) leave the executor's
// scratch pool clean, so later queries on the same executor stay
// bit-identical to a fresh one. The server-level counterparts live in
// internal/server; these pin the kernel contract directly.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/gen"
	"probesim/internal/graph"
)

// slowOpts makes a query expensive enough (hundreds of ms at least) that
// a 1ms deadline reliably interrupts it mid-flight on any machine.
func slowOpts(mode Mode) Options {
	return Options{Mode: mode, Seed: 1, NumWalks: 2_000_000}
}

func TestSingleSourceDeadlineStopsEveryMode(t *testing.T) {
	g := gen.PreferentialAttachment(5000, 6, 3)
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			start := time.Now()
			est, err := SingleSource(ctx, g, 1, slowOpts(mode))
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("2M-walk query finished under a 1ms deadline?")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			var be *budget.Error
			if !errors.As(err, &be) {
				t.Fatalf("err %v does not wrap *budget.Error", err)
			}
			// "Within one checkpoint interval": the kernels poll every few
			// trials, so even with scheduling noise the return must be far
			// below the seconds the full budget would cost.
			if elapsed > 2*time.Second {
				t.Fatalf("deadline honored only after %v", elapsed)
			}
			// Partial results accompany the error (possibly empty when the
			// deadline hit before the first checkpoint).
			if err != nil && est != nil && len(est) != g.NumNodes() {
				t.Fatalf("partial estimate has length %d, want %d", len(est), g.NumNodes())
			}
		})
	}
}

func TestSingleSourcePreCanceled(t *testing.T) {
	g := graph.Toy()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est, err := SingleSource(ctx, g, 0, Options{NumWalks: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if est != nil {
		t.Fatal("pre-canceled query returned a result")
	}
}

func TestWalkBudgetStops(t *testing.T) {
	g := gen.PreferentialAttachment(500, 4, 7)
	opt := Options{Seed: 1, NumWalks: 100000, Budget: Budget{MaxWalks: 500}}
	est, err := SingleSource(context.Background(), g, 1, opt)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not wrap *budget.Error", err)
	}
	// Workers overshoot by at most one trial each before noticing.
	if be.Walks < 500 || be.Walks > 500+int64(opt.withDefaults().Workers)+1 {
		t.Fatalf("stopped after %d walks, want ~500", be.Walks)
	}
	if est == nil {
		t.Fatal("budget stop returned no partial estimate")
	}
}

func TestProbeWorkBudgetStops(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 8, 5)
	opt := Options{Mode: ModePruned, Seed: 1, NumWalks: 100000, Budget: Budget{MaxProbeWork: 10000}}
	_, err := SingleSource(context.Background(), g, 1, opt)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var be *budget.Error
	if !errors.As(err, &be) || be.Work <= 0 {
		t.Fatalf("err = %v, want *budget.Error with positive Work", err)
	}
}

func TestBudgetTimeoutWithoutContextDeadline(t *testing.T) {
	g := gen.PreferentialAttachment(5000, 6, 3)
	opt := slowOpts(ModePruned)
	opt.Budget.Timeout = time.Millisecond
	_, err := SingleSource(context.Background(), g, 1, opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from Budget.Timeout", err)
	}
}

// TestCancellationLeavesScratchPoolClean is the scratch-corruption check:
// interrupt many pooled queries mid-flight, then verify a full query on
// the same executor is bit-identical to one from a fresh executor whose
// pool never saw a cancellation.
func TestCancellationLeavesScratchPoolClean(t *testing.T) {
	g := gen.PreferentialAttachment(800, 5, 13)
	opt := Options{Seed: 5, NumWalks: 4000}
	dirty := NewExecutor(g, opt)
	clean := NewExecutor(g, opt)

	// Mixed timeouts from "dead on arrival" to "might just finish": the
	// point is to interrupt queries at many different places, not that
	// every one is interrupted (the bit-identical check below is the
	// actual assertion).
	canceled := 0
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
		if _, err := dirty.SingleSource(ctx, graph.NodeID(i%100)); err != nil {
			canceled++
		}
		cancel()
	}
	if canceled == 0 {
		t.Fatal("no query was ever interrupted; the test exercised nothing")
	}
	for _, u := range []graph.NodeID{1, 17, 99, 250} {
		want, err := clean.SingleSource(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dirty.SingleSource(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("query %d: scratch corruption after cancellations: est[%d] = %v, want %v", u, v, got[v], want[v])
			}
		}
	}
}

// TestConcurrentCancellationUnderRace drives pooled queries with mixed
// deadlines from many goroutines; run with -race (CI does) this is the
// data-race proof for the meter seam and early scratch returns.
func TestConcurrentCancellationUnderRace(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 29)
	ex := NewExecutor(g, Options{Seed: 3, NumWalks: 2000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if w%2 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*50*time.Microsecond)
					_, _ = ex.SingleSource(ctx, graph.NodeID((w+i)%400))
					cancel()
				} else if _, err := ex.SingleSource(context.Background(), graph.NodeID((w+i)%400)); err != nil {
					t.Errorf("unbounded query failed: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTopKProgressiveCancellation(t *testing.T) {
	g := gen.PreferentialAttachment(5000, 6, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	opt := Options{Seed: 1, EpsA: 0.0001} // huge static budget
	start := time.Now()
	_, stats, err := TopKProgressive(ctx, g, 1, 5, opt)
	if err == nil {
		t.Fatal("progressive query finished under a 1ms deadline?")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
	if stats.Walks >= stats.BudgetWalks {
		t.Fatalf("stats claim the full budget ran: %+v", stats)
	}
}

func TestTopKPartialRankingOnBudget(t *testing.T) {
	g := gen.PreferentialAttachment(500, 4, 7)
	opt := Options{Seed: 1, NumWalks: 100000, Budget: Budget{MaxWalks: 1000}}
	top, err := TopK(context.Background(), g, 1, 5, opt)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(top) == 0 {
		t.Fatal("budget-stopped top-k returned no partial ranking")
	}
}

func TestUnbudgetedQueryUnchanged(t *testing.T) {
	// The refactor must not perturb un-budgeted results: same seed, same
	// answer as a direct computation with a cancelable (but never
	// canceled) context.
	g := gen.ErdosRenyi(300, 1200, 17)
	opt := Options{Seed: 11, NumWalks: 800}
	a, err := SingleSource(context.Background(), g, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := SingleSource(ctx, g, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("metered-but-unbounded query diverged at %d: %v vs %v", v, a[v], b[v])
		}
	}
}

// TestQuerierFlightOwnerCancellationDoesNotPoisonWaiters: a miss owned
// by a request with a tight deadline must not hand its cancellation
// error to a patient request that joined the same single-flight.
func TestQuerierFlightOwnerCancellationDoesNotPoisonWaiters(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 5, 17)
	q := NewQuerier(g, Options{Seed: 1, NumWalks: 200000}, 4)
	ownerStarted := make(chan struct{})
	ownerDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		defer cancel()
		close(ownerStarted)
		_, err := q.SingleSource(ctx, 7)
		ownerDone <- err
	}()
	<-ownerStarted
	time.Sleep(500 * time.Microsecond) // let the owner register its flight
	scores, err := q.SingleSource(context.Background(), 7)
	if err != nil {
		t.Fatalf("patient waiter inherited an error: %v", err)
	}
	if len(scores) != g.NumNodes() {
		t.Fatalf("waiter got %d scores, want %d", len(scores), g.NumNodes())
	}
	if err := <-ownerDone; err == nil {
		t.Log("owner finished inside its deadline (fast machine); waiter path untested this run")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("owner err = %v, want DeadlineExceeded", err)
	}
}

// TestQuerierWaiterHonorsOwnDeadline: a waiter must not wait on a
// shared flight past its own context deadline.
func TestQuerierWaiterHonorsOwnDeadline(t *testing.T) {
	g := gen.PreferentialAttachment(3000, 5, 17)
	q := NewQuerier(g, Options{Seed: 1, NumWalks: 2_000_000}, 4)
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		close(started)
		_, _ = q.SingleSource(ctx, 7)
	}()
	<-started
	time.Sleep(time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := q.SingleSource(ctx, 7)
	if err == nil {
		t.Fatal("waiter with 1ms deadline got an answer from a 200ms flight")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("waiter stuck %v past its deadline", elapsed)
	}
	<-done
}

// TestDeadlineOn100kGraph pins the PR acceptance criterion literally: a
// query with a 1ms deadline on a 100k-node graph returns a deadline
// error within one checkpoint interval (microseconds of work — asserted
// here with generous scheduling headroom).
func TestDeadlineOn100kGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node graph build in -short mode")
	}
	g := gen.PreferentialAttachment(100_000, 8, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SingleSource(ctx, g, 1, Options{Seed: 1, EpsA: 0.1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("1ms deadline honored only after %v", elapsed)
	}
	t.Logf("1ms deadline on 100k nodes honored in %v", elapsed)
}

// TestBudgetStopNeverInflatesScores pins the partial-result sanity the
// progressive contract depends on: a probe abandoned mid-expansion must
// contribute nothing, so no returned estimate can exceed 1 (a SimRank
// similarity) no matter where the budget tripped.
func TestBudgetStopNeverInflatesScores(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 21)
	tripped := 0
	for _, work := range []int64{500, 3000, 20000} {
		opt := Options{Seed: 1, NumWalks: 100000, Budget: Budget{MaxProbeWork: work}}
		// A generous budget may let the progressive run stop legitimately
		// (converged radius) before tripping; score sanity must hold
		// either way.
		top, _, err := TopKProgressive(context.Background(), g, 1, 5, opt)
		if errors.Is(err, ErrBudget) {
			tripped++
		} else if err != nil {
			t.Fatalf("work=%d: err = %v", work, err)
		}
		for _, s := range top {
			if s.Score > 1 {
				t.Fatalf("work=%d: budget-stopped ranking has score %v > 1 for node %d", work, s.Score, s.Node)
			}
		}
		est, err := SingleSource(context.Background(), g, 1, opt)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("work=%d: single-source err = %v, want ErrBudget", work, err)
		}
		for v, s := range est {
			if s > 1 {
				t.Fatalf("work=%d: partial estimate[%d] = %v > 1", work, v, s)
			}
		}
	}
	if tripped == 0 {
		t.Fatal("no progressive run ever tripped its work budget; the test exercised nothing")
	}
}

// TestQuerierSharedBudgetFailureIsShared: a flight that dies on the
// shared executor budget hands the SAME failure to its waiters — they
// must not re-run a deterministically doomed computation each.
func TestQuerierSharedBudgetFailureIsShared(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 5, 17)
	// The doomed query must run long enough (hundreds of ms) that the
	// later callers overlap it and join its flight rather than running
	// one after another.
	q := NewQuerier(g, Options{Seed: 1, NumWalks: 10_000_000, Budget: Budget{MaxWalks: 1_000_000}}, 4)
	const waiters = 4
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := q.SingleSource(context.Background(), 7)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want shared ErrBudget", err)
		}
	}
	// If each waiter had recomputed, misses would be ~waiters; shared
	// flights mean one computation total (all callers raced onto one
	// flight, or at worst a couple due to start skew).
	_, misses, _ := q.Stats()
	if misses > 2 {
		t.Fatalf("%d misses for %d concurrent identical doomed queries; budget failure not shared", misses, waiters)
	}
}
