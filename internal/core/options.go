package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"probesim/internal/walk"
)

// Mode selects which ProbeSim variant answers a query. The variants differ
// in how probes are executed, not in what they estimate; all satisfy the
// εa guarantee of Theorems 1-3.
type Mode int

const (
	// ModeAuto is the paper's full configuration (§6.1 "we apply all
	// optimizations presented in Sections 4.1 and 4.3"): pruning rules 1-2,
	// the batch walk tree, and the hybrid deterministic/randomized switch.
	ModeAuto Mode = iota
	// ModeBasic is Algorithm 1 with the deterministic probe and no
	// optimizations (walks capped only by the statistical hard limit).
	ModeBasic
	// ModePruned is Algorithm 1 plus pruning rules 1 and 2 (§4.1).
	ModePruned
	// ModeBatch adds the reverse-reachability walk tree (§4.2) on top of
	// ModePruned, probing each shared prefix once.
	ModeBatch
	// ModeRandomized is Algorithm 1 with the randomized probe (§4.3) and
	// walk truncation, the O(n/εa²·log(n/δ)) worst-case variant.
	ModeRandomized
	// ModeHybrid is the §4.4 best-of-both-worlds strategy: batch tree with
	// a per-path switch from deterministic to randomized probing when the
	// frontier outgrows c0·w·n.
	ModeHybrid
)

// String returns the mode name used in logs and experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeBasic:
		return "basic"
	case ModePruned:
		return "pruned"
	case ModeBatch:
		return "batch"
	case ModeRandomized:
		return "randomized"
	case ModeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a ProbeSim query. The zero value asks for the paper's
// defaults: c = 0.6, εa = 0.1, δ = 0.01, ModeAuto, all cores, seed 1.
type Options struct {
	// C is the SimRank decay factor in (0, 1). Default 0.6.
	C float64
	// EpsA is the maximum absolute error εa of any returned similarity.
	// Default 0.1.
	EpsA float64
	// Delta is the failure probability δ. Default 0.01.
	Delta float64
	// Mode selects the execution strategy. Default ModeAuto.
	Mode Mode
	// Workers bounds parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
	// Seed makes results reproducible for a fixed (Seed, Workers) pair.
	// Default 1.
	Seed uint64

	// Budget bounds the query's resource consumption at serving time:
	// wall clock, walk trials, probe work. The zero value is unbounded
	// (the library default); serving stacks set it so a single huge query
	// can never occupy the process indefinitely. See Budget.
	Budget Budget

	// NumWalks overrides the derived trial count nr when > 0 (used by the
	// experiment harness to trade accuracy for speed explicitly).
	NumWalks int
	// HybridC0 is the §4.4 switch constant c0. Default 1.
	HybridC0 float64
	// CompensateTruncation adds εt/2 to every non-zero estimate, halving
	// the one-sided truncation error as suggested at the end of §4.1.
	CompensateTruncation bool
}

// Budget bounds one query's resource consumption. Every limit is
// best-effort-prompt rather than instantaneous: kernels check at
// amortized checkpoints (every few walk trials, every probe level), so a
// tripped budget surfaces within one checkpoint interval — microseconds
// of work — while un-budgeted queries pay only a nil-check.
//
// A query stopped by its budget returns its partial estimate alongside
// the error (wrapped budget.Error; errors.Is recognizes
// context.DeadlineExceeded, context.Canceled and budget.ErrBudget). The
// partial vector holds whatever the completed trials accumulated — a
// systematic underestimate with no εa guarantee — so callers must treat
// it as diagnostic, not as an answer.
type Budget struct {
	// Timeout bounds the query's wall-clock time. It combines with any
	// context deadline (the earlier wins); 0 means no extra bound.
	Timeout time.Duration
	// MaxWalks caps the number of √c-walk trials across all workers.
	// 0 means the plan's derived trial count is the only bound.
	MaxWalks int64
	// MaxProbeWork caps probe edge traversals across all workers, the
	// dominant cost term of Algorithm 2. 0 means uncapped.
	MaxProbeWork int64
}

// IsZero reports whether the budget imposes no constraint.
func (b Budget) IsZero() bool {
	return b.Timeout <= 0 && b.MaxWalks <= 0 && b.MaxProbeWork <= 0
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.EpsA == 0 {
		o.EpsA = 0.1
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HybridC0 == 0 {
		o.HybridC0 = 1
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("core: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.EpsA <= 0 || o.EpsA >= 1 {
		return fmt.Errorf("core: error bound εa = %v outside (0, 1)", o.EpsA)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: failure probability δ = %v outside (0, 1)", o.Delta)
	}
	if o.Mode < ModeAuto || o.Mode > ModeHybrid {
		return fmt.Errorf("core: unknown mode %d", int(o.Mode))
	}
	return nil
}

// Plan is the resolved execution plan for a query: every parameter the
// theorems reason about, derived from Options and the graph size.
type Plan struct {
	Mode  Mode
	C     float64
	SqrtC float64
	// Eps is the sampling error ε, EpsT the walk-truncation parameter εt,
	// EpsP the probe-pruning parameter εp. For modes without pruning,
	// EpsT = EpsP = 0 and Eps = EpsA.
	Eps, EpsT, EpsP float64
	// NumWalks is the trial count nr = ⌈3c/ε² · ln(n/δ)⌉.
	NumWalks int
	// MaxWalkNodes caps walk length (pruning rule 1), or the statistical
	// hard cap when truncation is off.
	MaxWalkNodes int
	Workers      int
	Seed         uint64
	HybridC0     float64
	Compensate   bool
}

// planFor derives the execution plan from options for a graph with n nodes.
//
// For modes with pruning, Theorem 2 requires
//
//	ε + (1+ε)/(1−√c)·εp + εt/2 <= εa.
//
// We split the budget as ε = εa/2, εt = εa/2 (contributing εa/4) and
// εp = εa(1−√c)/(4(1+ε)) (contributing εa/4), achieving equality.
func planFor(o Options, n int) Plan {
	p := Plan{
		Mode:     o.Mode,
		C:        o.C,
		SqrtC:    math.Sqrt(o.C),
		Workers:  o.Workers,
		Seed:     o.Seed,
		HybridC0: o.HybridC0,
	}
	switch o.Mode {
	case ModeBasic:
		p.Eps = o.EpsA
		p.MaxWalkNodes = walk.HardCap
	case ModeRandomized:
		// The randomized probe adds no pruning error; use rule 1 only,
		// splitting εa between sampling and truncation.
		p.Eps = o.EpsA * 3 / 4
		p.EpsT = o.EpsA / 2 // contributes εt/2 = εa/4
		p.MaxWalkNodes = walk.TruncateLen(p.EpsT, p.SqrtC)
	default: // ModeAuto, ModePruned, ModeBatch, ModeHybrid
		p.Eps = o.EpsA / 2
		p.EpsT = o.EpsA / 2
		p.EpsP = o.EpsA * (1 - p.SqrtC) / (4 * (1 + p.Eps))
		p.MaxWalkNodes = walk.TruncateLen(p.EpsT, p.SqrtC)
		p.Compensate = o.CompensateTruncation
	}
	if o.NumWalks > 0 {
		p.NumWalks = o.NumWalks
	} else {
		nn := n
		if nn < 2 {
			nn = 2
		}
		p.NumWalks = int(math.Ceil(3 * o.C / (p.Eps * p.Eps) * math.Log(float64(nn)/o.Delta)))
	}
	if p.NumWalks < 1 {
		p.NumWalks = 1
	}
	return p
}

// PlanFor exposes the derived execution plan (for documentation, tests and
// the experiment harness).
func PlanFor(o Options, n int) (Plan, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Plan{}, err
	}
	return planFor(o, n), nil
}
