package fingerprint

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/walk"
)

func buildSmall(t *testing.T, opt BuildOptions) (*graph.Graph, *Index) {
	t.Helper()
	g := gen.ErdosRenyi(60, 300, 7)
	idx, err := Build(g, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, idx
}

func TestBuildDerivesWalkCount(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 3)
	idx, err := Build(g, BuildOptions{Eps: 0.2, Delta: 0.05})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := Walks(0.2, 0.05, g.NumNodes())
	if idx.NumWalks() != want {
		t.Fatalf("NumWalks = %d, want derived %d", idx.NumWalks(), want)
	}
	if idx.C() != 0.6 {
		t.Fatalf("C = %v, want default 0.6", idx.C())
	}
}

func TestWalksBoundMonotone(t *testing.T) {
	if Walks(0.1, 0.01, 100) >= Walks(0.05, 0.01, 100) {
		t.Fatal("halving eps should increase the walk count")
	}
	if Walks(0.1, 0.01, 100) >= Walks(0.1, 0.001, 100) {
		t.Fatal("tightening delta should increase the walk count")
	}
	if Walks(0.1, 0.01, 100) >= Walks(0.1, 0.01, 10000) {
		t.Fatal("more nodes should increase the walk count (union bound)")
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	for _, opt := range []BuildOptions{
		{C: 1.5},
		{C: -0.1},
		{Eps: 1.2},
		{Delta: 2},
	} {
		if _, err := Build(g, opt); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", opt)
		}
	}
}

func TestSinglePairSelf(t *testing.T) {
	_, idx := buildSmall(t, BuildOptions{NumWalks: 10, Seed: 1})
	got, err := idx.SinglePair(3, 3)
	if err != nil {
		t.Fatalf("SinglePair: %v", err)
	}
	if got != 1 {
		t.Fatalf("s(3,3) = %v, want 1", got)
	}
}

func TestNodeRangeErrors(t *testing.T) {
	_, idx := buildSmall(t, BuildOptions{NumWalks: 5, Seed: 1})
	if _, err := idx.SinglePair(-1, 0); err == nil {
		t.Error("SinglePair(-1, 0) succeeded, want error")
	}
	if _, err := idx.SinglePair(0, 1000); err == nil {
		t.Error("SinglePair(0, 1000) succeeded, want error")
	}
	if _, err := idx.SingleSource(1000); err == nil {
		t.Error("SingleSource(1000) succeeded, want error")
	}
}

func TestStaleAfterMutation(t *testing.T) {
	g, idx := buildSmall(t, BuildOptions{NumWalks: 5, Seed: 1})
	if idx.Stale() {
		t.Fatal("fresh index reported stale")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !idx.Stale() {
		t.Fatal("index not stale after mutation")
	}
	if _, err := idx.SingleSource(0); err != ErrStale {
		t.Fatalf("SingleSource after mutation: err = %v, want ErrStale", err)
	}
	if _, err := idx.SinglePair(0, 1); err != ErrStale {
		t.Fatalf("SinglePair after mutation: err = %v, want ErrStale", err)
	}
	if _, err := idx.TopK(0, 3); err != ErrStale {
		t.Fatalf("TopK after mutation: err = %v, want ErrStale", err)
	}
}

// referenceSingleSource recomputes the single-source estimate by scanning
// every stored walk directly, bypassing the inverted index.
func referenceSingleSource(idx *Index, u graph.NodeID) []float64 {
	n := idx.g.NumNodes()
	out := make([]float64, n)
	for j := range idx.trials {
		t := &idx.trials[j]
		wu := t.walkOf(u)
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == u {
				continue
			}
			if walk.MeetStep(wu, t.walkOf(graph.NodeID(v))) > 0 {
				out[v]++
			}
		}
	}
	inv := 1 / float64(idx.r)
	for v := range out {
		out[v] *= inv
	}
	out[u] = 1
	return out
}

func TestInvertedIndexMatchesDirectScan(t *testing.T) {
	g, idx := buildSmall(t, BuildOptions{NumWalks: 40, Seed: 5})
	for _, u := range []graph.NodeID{0, 7, 31, graph.NodeID(g.NumNodes() - 1)} {
		got, err := idx.SingleSource(u)
		if err != nil {
			t.Fatalf("SingleSource(%d): %v", u, err)
		}
		want := referenceSingleSource(idx, u)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("SingleSource(%d)[%d] = %v, want %v (direct walk scan)", u, v, got[v], want[v])
			}
		}
	}
}

func TestSinglePairConsistentWithSingleSource(t *testing.T) {
	_, idx := buildSmall(t, BuildOptions{NumWalks: 30, Seed: 9})
	est, err := idx.SingleSource(4)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v := 0; v < 20; v++ {
		got, err := idx.SinglePair(4, graph.NodeID(v))
		if err != nil {
			t.Fatalf("SinglePair: %v", err)
		}
		if math.Abs(got-est[v]) > 1e-12 {
			t.Fatalf("SinglePair(4,%d) = %v, SingleSource[%d] = %v; want equal", v, got, v, est[v])
		}
	}
}

func TestAccuracyAgainstPowerMethod(t *testing.T) {
	g := gen.ErdosRenyi(80, 480, 11)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("power.SimRank: %v", err)
	}
	idx, err := Build(g, BuildOptions{Eps: 0.05, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, u := range []graph.NodeID{2, 17, 55} {
		est, err := idx.SingleSource(u)
		if err != nil {
			t.Fatalf("SingleSource: %v", err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if d := math.Abs(est[v] - truth.At(u, graph.NodeID(v))); d > 0.05 {
				t.Fatalf("|est−truth| = %v at (%d,%d), exceeds ε = 0.05", d, u, v)
			}
		}
	}
}

func TestEstimatesAreProbabilities(t *testing.T) {
	_, idx := buildSmall(t, BuildOptions{NumWalks: 25, Seed: 2})
	est, err := idx.SingleSource(0)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v, s := range est {
		if s < 0 || s > 1 {
			t.Fatalf("est[%d] = %v outside [0, 1]", v, s)
		}
	}
}

func TestTopKMatchesSelectOnSingleSource(t *testing.T) {
	_, idx := buildSmall(t, BuildOptions{NumWalks: 30, Seed: 4})
	top, err := idx.TopK(1, 5)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top) != 5 {
		t.Fatalf("len(TopK) = %d, want 5", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("TopK not in descending order at %d: %v > %v", i, top[i].Score, top[i-1].Score)
		}
	}
	est, err := idx.SingleSource(1)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if top[0].Score != maxExcluding(est, 1) {
		t.Fatalf("TopK[0].Score = %v, want max of single-source %v", top[0].Score, maxExcluding(est, 1))
	}
}

func maxExcluding(est []float64, u graph.NodeID) float64 {
	best := math.Inf(-1)
	for v, s := range est {
		if graph.NodeID(v) == u {
			continue
		}
		if s > best {
			best = s
		}
	}
	return best
}

func TestZeroInDegreeSource(t *testing.T) {
	// A star pointing outward: the hub has zero in-degree, so every walk
	// from it stops immediately and it is similar to nobody.
	g := gen.Star(8)
	idx, err := Build(g, BuildOptions{NumWalks: 20, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	est, err := idx.SingleSource(0)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v := 1; v < g.NumNodes(); v++ {
		// Leaves share the hub as their only in-neighbor, but the hub's
		// walk never leaves the hub; leaf walks can never match it at
		// step >= 1 because the hub's walk has length 1.
		if est[v] != 0 {
			t.Fatalf("est[%d] = %v, want 0 for zero-in-degree source", v, est[v])
		}
	}
}

func TestMemoryBytesGrowsWithWalks(t *testing.T) {
	g := gen.ErdosRenyi(50, 250, 13)
	small, err := Build(g, BuildOptions{NumWalks: 10, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	big, err := Build(g, BuildOptions{NumWalks: 100, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if small.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes <= 0")
	}
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatalf("MemoryBytes with 100 walks (%d) not larger than with 10 (%d)",
			big.MemoryBytes(), small.MemoryBytes())
	}
}

func TestBuildDeterministicForSeed(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 21)
	a, err := Build(g, BuildOptions{NumWalks: 15, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(g, BuildOptions{NumWalks: 15, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Trials are assigned to workers deterministically by index, so the
	// stored walks must be identical regardless of worker count.
	estA, _ := a.SingleSource(3)
	estB, _ := b.SingleSource(3)
	for v := range estA {
		if estA[v] != estB[v] {
			t.Fatalf("seeded build differs across worker counts at node %d: %v vs %v", v, estA[v], estB[v])
		}
	}
}

func TestInvertedKeysSorted(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(30, 120, seed%64+1)
		idx, err := Build(g, BuildOptions{NumWalks: 8, Seed: seed%97 + 1})
		if err != nil {
			return false
		}
		for i := range idx.trials {
			tr := &idx.trials[i]
			if len(tr.keys) != len(tr.sources) {
				return false
			}
			for j := 1; j < len(tr.keys); j++ {
				if tr.keys[j] < tr.keys[j-1] {
					return false
				}
			}
			// Every inverted entry must point back to a real walk position.
			n := g.NumNodes()
			for j, key := range tr.keys {
				step := int(key / int64(n))
				node := graph.NodeID(key % int64(n))
				w := tr.walkOf(tr.sources[j])
				if step <= 0 || step >= len(w) || w[step] != node {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g, idx := buildSmall(t, BuildOptions{NumWalks: 20, Seed: 8})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(u graph.NodeID) {
			_, err := idx.SingleSource(u)
			done <- err
		}(graph.NodeID(w % g.NumNodes()))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent SingleSource: %v", err)
		}
	}
}
