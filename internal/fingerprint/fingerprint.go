// Package fingerprint implements the walk-fingerprint index of Fogaras &
// Rácz ("Scaling link-based similarity search", WWW 2005), the index-based
// Monte Carlo approach the paper discusses in §5: precompute r √c-walks per
// node once, then answer any SimRank query by matching the stored walks.
//
// Queries are fast — a single-source query touches only walks that actually
// meet the query node's walks — and the estimator is exactly the Monte
// Carlo estimator of §2.2, so the Hoeffding/union-bound guarantee carries
// over: with r >= ln(2n/δ)/(2ε²) walk pairs, every similarity returned by
// SingleSource is within ε of the truth with probability 1 − δ.
//
// The catch is the paper's point in citing this method: the index stores
// r·n walks (r·n/(1−√c) node ids in expectation) and must be rebuilt from
// scratch after any graph update. MemoryBytes exposes the space blow-up and
// queries return ErrStale once the graph changes, so the experiment harness
// can measure the trade-off ProbeSim removes.
//
// One deliberate deviation from the original system: Fogaras & Rácz couple
// the walks of a simulation through shared per-node random choices (the
// construction TSF later generalizes to one-way graphs) to compress the
// index. We store fully independent walks instead — the estimator stays
// unbiased pair-by-pair either way, the guarantee is cleaner, and the space
// cost we are here to measure only grows, which is the conservative
// direction for the comparison.
package fingerprint

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// NumWalks is the number r of fingerprints stored per node. When 0 it
	// is derived from Eps and Delta via the Hoeffding bound with a union
	// bound over the n possible targets of a single-source query.
	NumWalks int
	// Eps is the absolute error target used to derive NumWalks. Default 0.1.
	Eps float64
	// Delta is the failure probability used to derive NumWalks. Default 0.01.
	Delta float64
	// MaxLen caps walk length in nodes. Default walk.HardCap.
	MaxLen int
	// Seed makes the index reproducible. Default 1.
	Seed uint64
	// Workers bounds build parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.MaxLen <= 0 || o.MaxLen > walk.HardCap {
		o.MaxLen = walk.HardCap
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o BuildOptions) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("fingerprint: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return fmt.Errorf("fingerprint: error target ε = %v outside (0, 1)", o.Eps)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("fingerprint: failure probability δ = %v outside (0, 1)", o.Delta)
	}
	return nil
}

// Walks returns the fingerprint count needed for single-source queries with
// absolute error eps at confidence 1−delta on an n-node graph (Hoeffding
// plus a union bound over targets).
func Walks(eps, delta float64, n int) int {
	if n < 2 {
		n = 2
	}
	return int(math.Ceil(math.Log(2*float64(n)/delta) / (2 * eps * eps)))
}

// trial holds one simulation: a √c-walk per node, stored as a concatenated
// node array with per-node offsets, plus an inverted index from
// (step, node) positions to the sources whose walk passes through them.
type trial struct {
	nodes []graph.NodeID // walks back to back; walk of v includes v at position 0
	off   []int32        // len n+1; walk of v is nodes[off[v]:off[v+1]]

	// Inverted position index over steps >= 1 (two walks from distinct
	// sources can only meet at step >= 1). keys is sorted; sources is
	// parallel to keys. key = step·n + node.
	keys    []int64
	sources []graph.NodeID
}

// walkOf returns trial t's stored walk for source v.
func (t *trial) walkOf(v graph.NodeID) []graph.NodeID {
	return t.nodes[t.off[v]:t.off[v+1]]
}

// matches returns the sources whose walk visits node at the given step
// (step >= 1), via binary search on the inverted index.
func (t *trial) matches(n int, step int, node graph.NodeID) []graph.NodeID {
	key := int64(step)*int64(n) + int64(node)
	lo := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
	hi := lo
	for hi < len(t.keys) && t.keys[hi] == key {
		hi++
	}
	return t.sources[lo:hi]
}

// Index is a static fingerprint index over a snapshot of a graph. Queries
// are safe for concurrent use; the index must be rebuilt (Build) after any
// graph mutation.
type Index struct {
	g       *graph.Graph
	version uint64
	c       float64
	r       int
	maxLen  int
	trials  []trial
}

// Build generates the fingerprint index: opt.NumWalks (or the derived r)
// √c-walks from every node. Building is O(r·n/(1−√c)) expected time plus
// the sort for the inverted index, parallelized across trials.
func Build(g *graph.Graph, opt BuildOptions) (*Index, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	r := opt.NumWalks
	if r <= 0 {
		r = Walks(opt.Eps, opt.Delta, n)
	}
	idx := &Index{
		g:       g,
		version: g.Version(),
		c:       opt.C,
		r:       r,
		maxLen:  opt.MaxLen,
		trials:  make([]trial, r),
	}
	workers := opt.Workers
	if workers > r {
		workers = r
	}
	if workers < 1 {
		workers = 1
	}
	// Each trial draws from its own seed-derived stream so the index is
	// identical for a fixed seed regardless of the worker count.
	root := xrand.New(opt.Seed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := r*w/workers, r*(w+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				gen := walk.NewGenerator(g, opt.C, root.Split(uint64(j)))
				idx.trials[j] = buildTrial(g, gen, opt.MaxLen)
			}
		}(lo, hi)
	}
	wg.Wait()
	return idx, nil
}

// buildTrial generates one walk per node and the trial's inverted index.
func buildTrial(g *graph.Graph, gen *walk.Generator, maxLen int) trial {
	n := g.NumNodes()
	t := trial{off: make([]int32, n+1)}
	var buf []graph.NodeID
	for v := 0; v < n; v++ {
		buf = gen.Generate(graph.NodeID(v), maxLen, buf)
		t.nodes = append(t.nodes, buf...)
		t.off[v+1] = int32(len(t.nodes))
	}
	// Invert positions at steps >= 1.
	total := len(t.nodes) - n // every walk contributes len-1 inverted entries
	if total < 0 {
		total = 0
	}
	t.keys = make([]int64, 0, total)
	t.sources = make([]graph.NodeID, 0, total)
	for v := 0; v < n; v++ {
		w := t.nodes[t.off[v]:t.off[v+1]]
		for i := 1; i < len(w); i++ {
			t.keys = append(t.keys, int64(i)*int64(n)+int64(w[i]))
			t.sources = append(t.sources, graph.NodeID(v))
		}
	}
	sort.Sort(byKey{keys: t.keys, sources: t.sources})
	return t
}

// byKey sorts the parallel (keys, sources) arrays by key, breaking ties by
// source so the order is deterministic.
type byKey struct {
	keys    []int64
	sources []graph.NodeID
}

func (s byKey) Len() int { return len(s.keys) }
func (s byKey) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	return s.sources[i] < s.sources[j]
}
func (s byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.sources[i], s.sources[j] = s.sources[j], s.sources[i]
}

// ErrStale is returned by queries on an index whose graph has changed since
// Build; fingerprints cannot be patched incrementally, only rebuilt. This
// is the dynamic-graph weakness the paper's index-free design removes.
var ErrStale = fmt.Errorf("fingerprint: graph modified since build; rebuild required")

// Stale reports whether the underlying graph has mutated since Build.
func (idx *Index) Stale() bool { return idx.g.Version() != idx.version }

// NumWalks returns the number of fingerprints stored per node.
func (idx *Index) NumWalks() int { return idx.r }

// C returns the decay factor the index was built with.
func (idx *Index) C() float64 { return idx.c }

// MemoryBytes reports the resident size of the index: walk storage,
// offsets, and the inverted position index. This is the space-overhead
// number the experiment harness compares against the graph itself.
func (idx *Index) MemoryBytes() int64 {
	const sliceHeader = 24
	var b int64
	for i := range idx.trials {
		t := &idx.trials[i]
		b += sliceHeader * 4
		b += int64(cap(t.nodes))*4 + int64(cap(t.off))*4
		b += int64(cap(t.keys))*8 + int64(cap(t.sources))*4
	}
	return b
}

func (idx *Index) checkNode(v graph.NodeID) error {
	if v < 0 || int(v) >= idx.g.NumNodes() {
		return fmt.Errorf("fingerprint: node %d out of range [0, %d)", v, idx.g.NumNodes())
	}
	return nil
}

// SinglePair estimates s(u, v) as the fraction of trials whose stored walks
// from u and v meet (visit the same node at the same step).
func (idx *Index) SinglePair(u, v graph.NodeID) (float64, error) {
	if idx.Stale() {
		return 0, ErrStale
	}
	if err := idx.checkNode(u); err != nil {
		return 0, err
	}
	if err := idx.checkNode(v); err != nil {
		return 0, err
	}
	if u == v {
		return 1, nil
	}
	meets := 0
	for i := range idx.trials {
		t := &idx.trials[i]
		if walk.MeetStep(t.walkOf(u), t.walkOf(v)) > 0 {
			meets++
		}
	}
	return float64(meets) / float64(idx.r), nil
}

// SingleSource estimates s(u, v) for every node v: per trial, the inverted
// index yields exactly the sources whose walk meets u's walk, so the cost is
// proportional to the number of actual meetings rather than to n·r.
func (idx *Index) SingleSource(u graph.NodeID) ([]float64, error) {
	if idx.Stale() {
		return nil, ErrStale
	}
	if err := idx.checkNode(u); err != nil {
		return nil, err
	}
	n := idx.g.NumNodes()
	counts := make([]int32, n)
	seen := make([]int32, n) // epoch mark: trial index + 1
	for j := range idx.trials {
		t := &idx.trials[j]
		epoch := int32(j + 1)
		w := t.walkOf(u)
		for i := 1; i < len(w); i++ {
			for _, src := range t.matches(n, i, w[i]) {
				if src == u || seen[src] == epoch {
					continue
				}
				seen[src] = epoch
				counts[src]++
			}
		}
	}
	out := make([]float64, n)
	inv := 1 / float64(idx.r)
	for v, c := range counts {
		out[v] = float64(c) * inv
	}
	out[u] = 1
	return out, nil
}

// TopK returns the k nodes most similar to u under the fingerprint
// estimates, in descending score order.
func (idx *Index) TopK(u graph.NodeID, k int) ([]core.ScoredNode, error) {
	est, err := idx.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return core.SelectTopK(est, u, k), nil
}
