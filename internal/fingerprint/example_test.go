package fingerprint_test

import (
	"fmt"
	"math"

	"probesim/internal/fingerprint"
	"probesim/internal/graph"
)

// Build once, query many times — until the graph changes, at which point
// the index refuses to serve and must be rebuilt. That staleness contract
// is exactly the paper's argument for being index-free.
func Example() {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	idx, err := fingerprint.Build(g, fingerprint.BuildOptions{NumWalks: 2000, Seed: 1})
	if err != nil {
		panic(err)
	}
	s, err := idx.SinglePair(1, 2) // share their only in-neighbor: s = c = 0.6
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimate within 0.05 of 0.6: %v\n", math.Abs(s-0.6) <= 0.05)

	_ = g.AddEdge(3, 0)
	_, err = idx.SinglePair(1, 2)
	fmt.Printf("after update: %v\n", err)
	// Output:
	// estimate within 0.05 of 0.6: true
	// after update: fingerprint: graph modified since build; rebuild required
}
