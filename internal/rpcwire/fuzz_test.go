package rpcwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"probesim/internal/budget"
	"probesim/internal/graph"
)

// FuzzReadFrame: arbitrary bytes through the frame reader must error or
// parse — never panic, and never allocate far beyond the bytes actually
// provided (a lying length prefix is the classic way to let one packet
// demand a gigabyte).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, byte(TMeta)})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, byte(TWalk)}) // huge claimed length
	var ok bytes.Buffer
	WriteFrame(&ok, TShard, []byte("payload"))
	f.Add(ok.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// A parsed frame must be reconstructible from the input.
		if len(data) < 5+len(payload) {
			t.Fatalf("frame of %d payload bytes out of %d input bytes", len(payload), len(data))
		}
		if data[4] != typ {
			t.Fatalf("type %d, header byte %d", typ, data[4])
		}
		if !bytes.Equal(payload, data[5:5+len(payload)]) {
			t.Fatal("payload does not match input")
		}
		// Cap check: for a frame the input could not back, ReadFrame must
		// have failed above rather than allocating the claimed size.
		if cap(payload) > len(data)+frameChunk {
			t.Fatalf("allocated %d bytes for %d input bytes", cap(payload), len(data))
		}
	})
}

// FuzzReadFrameTruncated drives the chunked large-frame path directly: a
// header claiming up to MaxFrame over a short body must fail with a read
// error after at most one chunk of allocation.
func FuzzReadFrameTruncated(f *testing.F) {
	f.Add(uint32(frameChunk+1), []byte("short"))
	f.Add(uint32(MaxFrame-1), []byte{})
	f.Add(uint32(17), []byte("0123456789abcdef0"))
	f.Fuzz(func(t *testing.T, claim uint32, body []byte) {
		var in bytes.Buffer
		var hdr [5]byte
		binary.LittleEndian.PutUint32(hdr[:4], claim)
		hdr[4] = byte(TWalk)
		in.Write(hdr[:])
		in.Write(body)
		_, payload, err := ReadFrame(&in, nil)
		if int(claim) < MaxFrame && int(claim) <= len(body) {
			if err != nil {
				t.Fatalf("backed frame failed: %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("claim %d over %d body bytes parsed", claim, len(body))
		}
		if cap(payload) > len(body)+frameChunk {
			t.Fatalf("allocated %d for %d body bytes", cap(payload), len(body))
		}
	})
}

// fuzzDecoders runs every message decoder over the same corrupt input;
// none may panic, and any message that decodes must re-encode and decode
// to the same value (round-trip stability is what the wire peers rely
// on).
func FuzzDecodeMessages(f *testing.F) {
	h := budget.Header{Remaining: 1234, MaxWalks: 5, MaxWork: 6}
	f.Add(MetaRequest{Budget: h}.Append(nil))
	f.Add(MetaReply{Nodes: 10, Edges: 20, Version: 3, LastBatch: 7, Shift: 4, Shards: 2, Owned: []uint32{0, 1}}.Append(nil))
	f.Add(ShardRequest{Budget: h, Version: 9, Shard: 1}.Append(nil))
	f.Add(ShardReply{CSR: graph.CSRShard{InOff: []uint32{0, 1}, InDst: []graph.NodeID{3}, OutOff: []uint32{0, 0}}}.Append(nil))
	f.Add(WalkRequest{Budget: h, Version: 2, SqrtC: 0.77, Cur: 5, State: 42, Room: 8}.Append(nil))
	f.Add(WalkReply{State: 9, Status: WalkHandoff, Nodes: []graph.NodeID{1, 2}}.Append(nil))
	f.Add(ApplyRequest{Budget: h, Batch: 11, Ops: []Op{{U: 1, V: 2}, {Remove: true, U: 3, V: 4}}}.Append(nil))
	f.Add(ErrorReply{Code: CodeRetiredGen, Msg: "gone"}.Append(nil))
	f.Add(PingRequest{Budget: h}.Append(nil))
	f.Add(PingReply{Version: 8, LastBatch: 13}.Append(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeMetaRequest(data); err == nil {
			// MetaRequest rejects trailing bytes, so a successful decode
			// must re-encode to exactly the input.
			if out := m.Append(nil); !bytes.Equal(out, data) {
				t.Fatalf("MetaRequest: decode/encode changed %x -> %x", data, out)
			}
		}
		// The remaining decoders tolerate trailing bytes (the dec cursor
		// stops where the message ends): a successful decode must
		// re-encode to a PREFIX of the input. WalkRequest/WalkReply are
		// excluded from the prefix check only because float64 NaN payloads
		// need not survive a value round trip bit for bit; they still must
		// not panic.
		prefix := func(what string, out []byte) {
			if !bytes.HasPrefix(data, out) {
				t.Fatalf("%s: re-encoded %x is not a prefix of input %x", what, out, data)
			}
		}
		if m, err := DecodeMetaReply(data); err == nil {
			prefix("MetaReply", m.Append(nil))
		}
		if m, err := DecodeShardRequest(data); err == nil {
			prefix("ShardRequest", m.Append(nil))
		}
		if m, err := DecodeShardReply(data); err == nil {
			prefix("ShardReply", m.Append(nil))
		}
		if m, err := DecodeWalkRequest(data); err == nil {
			_ = m
		}
		if m, err := DecodeWalkReply(data); err == nil {
			_ = m
		}
		if m, err := DecodeApplyRequest(data); err == nil {
			prefix("ApplyRequest", m.Append(nil))
		}
		if m, err := DecodeErrorReply(data); err == nil {
			prefix("ErrorReply", m.Append(nil))
		}
		if m, err := DecodePingRequest(data); err == nil {
			// PingRequest rejects trailing bytes like MetaRequest.
			if out := m.Append(nil); !bytes.Equal(out, data) {
				t.Fatalf("PingRequest: decode/encode changed %x -> %x", data, out)
			}
		}
		if m, err := DecodePingReply(data); err == nil {
			prefix("PingReply", m.Append(nil))
		}
	})
}

// FuzzWriteReadFrame: anything written must read back identically.
func FuzzWriteReadFrame(f *testing.F) {
	f.Add(uint8(TMeta), []byte{})
	f.Add(uint8(TErr), []byte("error payload"))
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			if len(payload) >= MaxFrame {
				return
			}
			t.Fatal(err)
		}
		gtyp, gp, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gtyp != typ || !bytes.Equal(gp, payload) {
			t.Fatalf("round trip changed frame: %d/%x -> %d/%x", typ, payload, gtyp, gp)
		}
		if _, _, err := ReadFrame(&buf, nil); err != io.EOF {
			t.Fatalf("trailing read: %v", err)
		}
	})
}
