package rpcwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello shard plane")
	if err := WriteFrame(&buf, TShard, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TShard || !bytes.Equal(got, payload) {
		t.Fatalf("got type %d payload %q", typ, got)
	}
}

func TestFrameReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TMeta, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 64)
	_, got, err := ReadFrame(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[0] {
		t.Fatal("large scratch buffer was not reused")
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrame)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame accepted: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TMeta, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(short), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	req := MetaRequest{Budget: budget.Header{Remaining: 250 * time.Millisecond, MaxWalks: 7, MaxWork: 9}}
	got, err := DecodeMetaRequest(req.Append(nil))
	if err != nil || got != req {
		t.Fatalf("meta request: %+v err %v", got, err)
	}
	rep := MetaReply{Nodes: 1000, Edges: 5000, Version: 42, Shift: 6, Shards: 16, Owned: []uint32{0, 2, 4}}
	gotRep, err := DecodeMetaReply(rep.Append(nil))
	if err != nil || !reflect.DeepEqual(gotRep, rep) {
		t.Fatalf("meta reply: %+v err %v", gotRep, err)
	}
}

func TestShardRoundTrip(t *testing.T) {
	req := ShardRequest{Version: 7, Shard: 3}
	got, err := DecodeShardRequest(req.Append(nil))
	if err != nil || got != req {
		t.Fatalf("shard request: %+v err %v", got, err)
	}
	rep := ShardReply{CSR: graph.CSRShard{
		InOff:  []uint32{0, 1, 3},
		InDst:  []graph.NodeID{5, 6, 7},
		OutOff: []uint32{0, 0, 2},
		OutDst: []graph.NodeID{1, 2},
	}}
	gotRep, err := DecodeShardReply(rep.Append(nil))
	if err != nil || !reflect.DeepEqual(gotRep, rep) {
		t.Fatalf("shard reply: %+v err %v", gotRep, err)
	}
}

func TestWalkRoundTrip(t *testing.T) {
	req := WalkRequest{
		Budget:  budget.Header{Remaining: time.Second},
		Version: 9, SqrtC: 0.7745966692414834, Cur: 12, State: 0xdeadbeefcafef00d, Room: 95,
	}
	got, err := DecodeWalkRequest(req.Append(nil))
	if err != nil || got != req {
		t.Fatalf("walk request: %+v err %v", got, err)
	}
	rep := WalkReply{State: 17, Status: WalkHandoff, Nodes: []graph.NodeID{3, 1, 4, 1, 5}}
	gotRep, err := DecodeWalkReply(rep.Append(nil))
	if err != nil || !reflect.DeepEqual(gotRep, rep) {
		t.Fatalf("walk reply: %+v err %v", gotRep, err)
	}
}

func TestApplyRoundTrip(t *testing.T) {
	req := ApplyRequest{Ops: []Op{{U: 1, V: 2}, {Remove: true, U: 3, V: 4}}}
	got, err := DecodeApplyRequest(req.Append(nil))
	if err != nil || !reflect.DeepEqual(got, req) {
		t.Fatalf("apply request: %+v err %v", got, err)
	}
}

func TestPingRoundTrip(t *testing.T) {
	req := PingRequest{Budget: budget.Header{Remaining: 80 * time.Millisecond}}
	got, err := DecodePingRequest(req.Append(nil))
	if err != nil || got != req {
		t.Fatalf("ping request: %+v err %v", got, err)
	}
	if _, err := DecodePingRequest(append(req.Append(nil), 0)); err == nil {
		t.Fatal("ping request with trailing bytes accepted")
	}
	rep := PingReply{Version: 11, LastBatch: 42}
	gotRep, err := DecodePingReply(rep.Append(nil))
	if err != nil || gotRep != rep {
		t.Fatalf("ping reply: %+v err %v", gotRep, err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	rep := ErrorReply{Code: CodeRetiredGen, Msg: "generation 41 retired"}
	got, err := DecodeErrorReply(rep.Append(nil))
	if err != nil || got != rep {
		t.Fatalf("error reply: %+v err %v", got, err)
	}
}

func TestTruncatedPayloadsRejected(t *testing.T) {
	rep := ShardReply{CSR: graph.CSRShard{
		InOff: []uint32{0, 2}, InDst: []graph.NodeID{1, 2}, OutOff: []uint32{0, 0}, OutDst: nil,
	}}
	full := rep.Append(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeShardReply(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}
