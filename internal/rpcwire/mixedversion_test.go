package rpcwire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
)

// The trailer scheme's compatibility claim is that both mixed-version
// pairings degrade to tracing-off with bit-identical query payloads:
//
//   - new router → old worker: the router never attaches a trace field
//     to an engine that did not advertise CapTrace, so the request bytes
//     are exactly the pre-trailer form (verified here byte-for-byte);
//   - old router → new worker: an untraced request decodes with
//     Trace == nil, the worker records nothing, and its replies omit the
//     span trailer entirely — an old decoder that ignores trailing bytes
//     sees only the fixed fields it always saw.
//
// These tests pin both directions against hand-rolled "old" encoders and
// decoders that replicate the pre-trailer wire forms.

func testHeader() budget.Header {
	return budget.Header{Remaining: time.Second, MaxWalks: 100, MaxWork: 1000}
}

// oldShardRequestBytes is the pre-trailer ShardRequest encoding: budget
// header, version, shard — nothing after.
func oldShardRequestBytes(m ShardRequest) []byte {
	b := m.Budget.AppendBinary(nil)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	return binary.LittleEndian.AppendUint32(b, m.Shard)
}

func oldWalkRequestBytes(m WalkRequest) []byte {
	b := m.Budget.AppendBinary(nil)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.SqrtC))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Cur))
	b = binary.LittleEndian.AppendUint64(b, m.State)
	return binary.LittleEndian.AppendUint32(b, m.Room)
}

func oldApplyRequestBytes(m ApplyRequest) []byte {
	b := m.Budget.AppendBinary(nil)
	b = binary.LittleEndian.AppendUint64(b, m.Batch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Ops)))
	for _, op := range m.Ops {
		k := byte(0)
		if op.Remove {
			k = 1
		}
		b = append(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	return b
}

func oldMetaReplyBytes(m MetaReply) []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.Nodes)
	b = binary.LittleEndian.AppendUint64(b, m.Edges)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, m.LastBatch)
	b = binary.LittleEndian.AppendUint32(b, m.Shift)
	b = binary.LittleEndian.AppendUint32(b, m.Shards)
	return appendU32s(b, m.Owned)
}

func oldWalkReplyBytes(m WalkReply) []byte {
	b := binary.LittleEndian.AppendUint64(nil, m.State)
	b = append(b, m.Status)
	return appendNodes(b, m.Nodes)
}

// New router talking to an old worker: traceOK is false for an engine
// whose MetaReply carried no CapTrace, so requests go out with Trace ==
// nil — and a traceless request must be byte-identical to the old wire
// form so the old worker's strict-prefix decoder is none the wiser.
func TestNewRouterOldWorkerRequestsBitIdentical(t *testing.T) {
	sr := ShardRequest{Budget: testHeader(), Version: 7, Shard: 3}
	if got, want := sr.Append(nil), oldShardRequestBytes(sr); !bytes.Equal(got, want) {
		t.Fatalf("traceless ShardRequest differs from legacy form:\n got %x\nwant %x", got, want)
	}
	wr := WalkRequest{Budget: testHeader(), Version: 7, SqrtC: 0.8, Cur: 42, State: 0xDEADBEEF, Room: 16}
	if got, want := wr.Append(nil), oldWalkRequestBytes(wr); !bytes.Equal(got, want) {
		t.Fatalf("traceless WalkRequest differs from legacy form:\n got %x\nwant %x", got, want)
	}
	ar := ApplyRequest{Budget: testHeader(), Batch: 9, Ops: []Op{{U: 1, V: 2}, {Remove: true, U: 3, V: 4}}}
	if got, want := ar.Append(nil), oldApplyRequestBytes(ar); !bytes.Equal(got, want) {
		t.Fatalf("traceless ApplyRequest differs from legacy form:\n got %x\nwant %x", got, want)
	}
}

// Old worker receiving a traced request anyway (e.g. a router from
// before capability gating): the fixed decoders have always ignored
// trailing bytes, so the old worker decodes the same fixed fields and
// just never sees the trace. Replicate the old decode as fixed-fields-
// then-stop and check it against the new traced encoding.
func TestOldWorkerDecodesTracedRequests(t *testing.T) {
	tc := &TraceContext{Hi: 0x1111, Lo: 0x2222, Parent: 5}
	sr := ShardRequest{Budget: testHeader(), Version: 7, Shard: 3, Trace: tc}
	b := sr.Append(nil)

	// Old decoder: budget header + fixed fields, trailing bytes dropped.
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	d := dec{b: rest}
	old := ShardRequest{Budget: h, Version: d.u64(), Shard: d.u32()}
	if d.err != nil {
		t.Fatal(d.err)
	}
	if old.Version != sr.Version || old.Shard != sr.Shard || old.Budget != sr.Budget {
		t.Fatalf("old decode mangled fixed fields: %+v", old)
	}
	if len(d.b) != 8+traceContextSize {
		t.Fatalf("expected exactly one trace trailer after fixed fields, %d bytes left", len(d.b))
	}
}

// Old router talking to a new worker: an untraced request decodes with
// Trace == nil on the worker, the worker records no spans, and a
// zero-caps, span-free reply is byte-identical to the pre-trailer wire
// form. The capability word on MetaReply is the one deliberate addition;
// old MetaReply decoders ignore trailing bytes, so verify the fixed
// prefix survives and the legacy decode still sees the same fields.
func TestOldRouterNewWorkerRepliesBitIdentical(t *testing.T) {
	sr, err := DecodeShardRequest(oldShardRequestBytes(ShardRequest{Budget: testHeader(), Version: 1, Shard: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trace != nil {
		t.Fatal("untraced legacy request decoded with a trace context")
	}

	// Span-free replies: bit-identical to the legacy form.
	shardRep := ShardReply{CSR: graph.CSRShard{
		InOff: []uint32{0, 1}, InDst: []graph.NodeID{4},
		OutOff: []uint32{0, 2}, OutDst: []graph.NodeID{5, 6},
	}}
	legacyShard := appendU32s(nil, shardRep.CSR.InOff)
	legacyShard = appendNodes(legacyShard, shardRep.CSR.InDst)
	legacyShard = appendU32s(legacyShard, shardRep.CSR.OutOff)
	legacyShard = appendNodes(legacyShard, shardRep.CSR.OutDst)
	if got := shardRep.Append(nil); !bytes.Equal(got, legacyShard) {
		t.Fatalf("span-free ShardReply differs from legacy form:\n got %x\nwant %x", got, legacyShard)
	}
	walkRep := WalkReply{State: 77, Status: WalkEnded, Nodes: []graph.NodeID{1, 2, 3}}
	if got, want := walkRep.Append(nil), oldWalkReplyBytes(walkRep); !bytes.Equal(got, want) {
		t.Fatalf("span-free WalkReply differs from legacy form:\n got %x\nwant %x", got, want)
	}

	// MetaReply with CapTrace: fixed prefix unchanged, so a legacy
	// decoder (fixed fields, drop the tail) reads the same shape.
	meta := MetaReply{Nodes: 10, Edges: 20, Version: 3, LastBatch: 4, Shift: 2, Shards: 4, Owned: []uint32{0, 2}, Caps: CapTrace}
	b := meta.Append(nil)
	legacyPrefix := oldMetaReplyBytes(meta)
	if !bytes.HasPrefix(b, legacyPrefix) {
		t.Fatalf("MetaReply fixed prefix changed:\n got %x\nwant prefix %x", b, legacyPrefix)
	}
	oldDecoded, err := DecodeMetaReply(legacyPrefix) // what an old worker would have sent
	if err != nil {
		t.Fatal(err)
	}
	if oldDecoded.Caps != 0 || oldDecoded.Spans != nil {
		t.Fatalf("legacy MetaReply decoded with trailer fields set: %+v", oldDecoded)
	}
	newDecoded, err := DecodeMetaReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if newDecoded.Caps != CapTrace {
		t.Fatalf("CapTrace lost in round trip: %+v", newDecoded)
	}
	// A zero-caps reply from a new worker is exactly the legacy bytes.
	meta.Caps = 0
	if got := meta.Append(nil); !bytes.Equal(got, legacyPrefix) {
		t.Fatalf("zero-caps MetaReply differs from legacy form:\n got %x\nwant %x", got, legacyPrefix)
	}
}

// Traced round trip: the full new-router/new-worker path preserves the
// trace context and spans exactly.
func TestTracedRoundTrip(t *testing.T) {
	tc := &TraceContext{Hi: 0xA, Lo: 0xB, Parent: 3}
	sr, err := DecodeShardRequest(ShardRequest{Budget: testHeader(), Version: 1, Shard: 2, Trace: tc}.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil || *sr.Trace != *tc {
		t.Fatalf("trace context mangled: %+v", sr.Trace)
	}
	wr, err := DecodeWalkRequest(WalkRequest{Budget: testHeader(), Version: 1, SqrtC: 0.8, Cur: 9, State: 1, Room: 4, Trace: tc}.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Trace == nil || *wr.Trace != *tc {
		t.Fatalf("trace context mangled: %+v", wr.Trace)
	}
	ar, err := DecodeApplyRequest(ApplyRequest{Budget: testHeader(), Batch: 1, Ops: []Op{{U: 1, V: 2}}, Trace: tc}.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Trace == nil || *ar.Trace != *tc {
		t.Fatalf("trace context mangled: %+v", ar.Trace)
	}

	spans := []qtrace.Span{
		{ID: 1, Parent: 0, Start: 10, End: 20, Name: "worker.walk_segment", Attrs: "batch=3"},
		{ID: 2, Parent: 1, Start: 12, End: 18, Name: "walk.steps"},
	}
	rep, err := DecodeWalkReply(WalkReply{State: 5, Status: WalkHandoff, Nodes: []graph.NodeID{7}, Spans: spans}.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Spans, spans) {
		t.Fatalf("spans mangled:\n got %+v\nwant %+v", rep.Spans, spans)
	}
}
