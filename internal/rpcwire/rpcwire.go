// Package rpcwire is the binary wire codec of the cross-process shard
// plane: length-prefixed frames over a byte stream, with hand-rolled
// little-endian message encodings. The protocol is deliberately tiny —
// a handful of request/reply pairs and an error frame — because the
// shard engine API it carries (report version / resolve adjacency spans /
// sample walk segments / apply mutations / publish, each with a batched
// variant behind CapBatch) is tiny.
//
// Frame layout:
//
//	u32 payload length | u8 message type | payload
//
// Every REQUEST payload begins with a budget.Header (remaining deadline +
// remaining walk/work caps), so the worker can arm a meter equivalent to
// the router-side query's: a deadline that expired on the router stops a
// remote walk loop at its first poll, and a worker never keeps burning
// CPU for a query whose client already gave up.
//
// Replies carry no budget header. A handler failure of any kind travels
// as a TErr frame (code + message) so the client can distinguish
// semantic errors (unknown generation, bad shard id) from transport
// failures (broken/timed-out connection), which surface as I/O errors.
//
// # Versioned optional trailers
//
// Query-path messages may carry optional tagged trailers after their
// fixed encoding: a trace context on requests (TShard/TWalk/TApply, next
// to the budget header they already carry), recorded worker spans on the
// corresponding replies, and a capability word on MetaReply. The fixed
// decoders of those messages have always ignored trailing bytes, so an
// old worker silently drops a new router's trace field and an old router
// silently drops a new worker's trailers — tracing degrades to off, and
// query answers stay bit-identical because the walk state never moved.
// TMeta/TPing requests reject trailing bytes on old workers, so trailers
// are never attached to them; capability discovery rides the MetaReply a
// router already fetches at assembly.
//
// Trailers are canonical: emitted in a fixed tag order with exact body
// lengths, and the parser accepts only that form (stopping at the first
// unknown or non-canonical trailer, which legacy peers treat the same as
// arbitrary trailing garbage). Canonical form keeps decode→encode an
// identity on the trailer bytes.
package rpcwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
)

// Message types.
const (
	TMeta     uint8 = iota + 1 // MetaRequest -> MetaReply: report version/shape
	TMetaRep                   // MetaReply
	TShard                     // ShardRequest -> ShardReply: resolve adjacency spans
	TShardRep                  // ShardReply
	TWalk                      // WalkRequest -> WalkReply: sample a walk segment
	TWalkRep                   // WalkReply
	TApply                     // ApplyRequest -> MetaReply: apply edge mutations
	TPublish                   // PublishRequest -> MetaReply: republish + report
	TErr                       // ErrorReply
	TPing                      // PingRequest -> PingReply: version/watermark probe
	TPingRep                   // PingReply

	// Batched query-path messages (CapBatch). A peer that lacks the
	// capability never sees them: routers fall back to the per-item
	// TShard/TWalk forms, which are byte-identical on the wire to a
	// pre-batch router.
	TWalkBatch    // WalkBatchRequest -> WalkBatchReply: sample N walk segments
	TWalkBatchRep // WalkBatchReply
	TShards       // ShardsRequest -> ShardsReply: resolve N adjacency blocks
	TShardsRep    // ShardsReply
)

// Error codes carried by TErr frames.
const (
	CodeInternal    uint8 = 1 // handler failure (bad op, storage error)
	CodeRetiredGen  uint8 = 2 // requested generation no longer retained
	CodeBadRequest  uint8 = 3 // malformed or out-of-range request
	CodeUnavailable uint8 = 4 // retry-safe refusal (e.g. annulled WAL append); the batch id was not consumed
)

// MaxFrame bounds a frame's payload. A shard block of a billion-edge
// graph fits; a corrupt length prefix does not get to allocate the
// machine.
const MaxFrame = 1 << 30

// Trailer tags. Each trailer is tag (u32) | body length (u32) | body.
const (
	tagTrace uint32 = 0x43525451 // "QTRC": TraceContext on a request
	tagCaps  uint32 = 0x53504143 // "CAPS": capability flags on MetaReply
	tagSpans uint32 = 0x534E5053 // "SPNS": recorded worker spans on a reply
)

// Capability flags carried by MetaReply.Caps.
const (
	// CapTrace: the worker understands the trace trailer and returns its
	// spans on traced requests. Routers attach trace contexts only to
	// engines that advertised it, so an old worker never sees a trace
	// field on the wire at all.
	CapTrace uint32 = 1 << 0
	// CapBatch: the worker serves the batched query-path messages
	// (TWalkBatch, TShards). Routers send batches only to engines that
	// advertised it and fall back to per-item TWalk/TShard requests
	// otherwise, so mixed-version fleets keep answering bit-identically.
	CapBatch uint32 = 1 << 1
)

// TraceContext is the cross-process form of "this request belongs to a
// sampled trace": the 128-bit trace id plus the caller-side span the
// worker's spans re-parent under when grafted back.
type TraceContext struct {
	Hi, Lo uint64
	Parent uint32
}

const traceContextSize = 20

// appendTrailer emits one canonical trailer.
func appendTrailer(b []byte, tag uint32, body []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, tag)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	return append(b, body...)
}

func appendTraceTrailer(b []byte, tc TraceContext) []byte {
	var body [traceContextSize]byte
	binary.LittleEndian.PutUint64(body[0:], tc.Hi)
	binary.LittleEndian.PutUint64(body[8:], tc.Lo)
	binary.LittleEndian.PutUint32(body[16:], tc.Parent)
	return appendTrailer(b, tagTrace, body[:])
}

// maxWireSpans bounds a decoded span trailer: hostile counts cannot
// allocate past what one trace may hold anyway.
const maxWireSpans = qtrace.MaxSpans

// appendSpansTrailer emits recorded spans. Callers skip it for empty
// slices (the canonical form never carries a zero count).
func appendSpansTrailer(b []byte, spans []qtrace.Span) []byte {
	if len(spans) > maxWireSpans {
		spans = spans[:maxWireSpans]
	}
	body := make([]byte, 0, 64*len(spans))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(spans)))
	for _, s := range spans {
		body = binary.LittleEndian.AppendUint32(body, s.ID)
		body = binary.LittleEndian.AppendUint32(body, s.Parent)
		body = binary.LittleEndian.AppendUint64(body, uint64(s.Start))
		body = binary.LittleEndian.AppendUint64(body, uint64(s.End))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Name)))
		body = append(body, s.Name...)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Attrs)))
		body = append(body, s.Attrs...)
	}
	return appendTrailer(b, tagSpans, body)
}

// trailers is what the optional tail of a message parsed to.
type trailers struct {
	trace *TraceContext
	caps  uint32
	spans []qtrace.Span
}

// parseTrailers consumes canonical trailers from b, stopping (and
// discarding nothing already parsed) at the first malformed, unknown or
// out-of-order trailer — the legacy "ignore trailing bytes" behavior.
// Tag order is fixed: tagTrace, tagCaps, tagSpans.
func parseTrailers(b []byte) trailers {
	var t trailers
	last := uint32(0)
	rank := func(tag uint32) uint32 {
		switch tag {
		case tagTrace:
			return 1
		case tagCaps:
			return 2
		case tagSpans:
			return 3
		}
		return 0
	}
	for len(b) >= 8 {
		tag := binary.LittleEndian.Uint32(b)
		n := int(binary.LittleEndian.Uint32(b[4:]))
		r := rank(tag)
		if r == 0 || r <= last || n < 0 || len(b) < 8+n {
			return t
		}
		body := b[8 : 8+n]
		switch tag {
		case tagTrace:
			if n != traceContextSize {
				return t
			}
			t.trace = &TraceContext{
				Hi:     binary.LittleEndian.Uint64(body[0:]),
				Lo:     binary.LittleEndian.Uint64(body[8:]),
				Parent: binary.LittleEndian.Uint32(body[16:]),
			}
		case tagCaps:
			if n != 4 {
				return t
			}
			caps := binary.LittleEndian.Uint32(body)
			if caps == 0 { // canonical form omits a zero word
				return t
			}
			t.caps = caps
		case tagSpans:
			spans, ok := decodeSpansBody(body)
			if !ok {
				return t
			}
			t.spans = spans
		}
		last = r
		b = b[8+n:]
	}
	return t
}

// decodeSpansBody decodes a span trailer body; ok is false unless the
// body is exactly canonical (count > 0, fully consumed).
func decodeSpansBody(body []byte) ([]qtrace.Span, bool) {
	d := dec{b: body}
	n := d.u32()
	if d.err != nil || n == 0 || n > maxWireSpans || len(d.b) < 32*int(n) {
		return nil, false
	}
	spans := make([]qtrace.Span, 0, n)
	for i := uint32(0); i < n; i++ {
		s := qtrace.Span{ID: d.u32(), Parent: d.u32()}
		s.Start = time.Duration(d.u64())
		s.End = time.Duration(d.u64())
		s.Name = d.str()
		s.Attrs = d.str()
		if d.err != nil {
			return nil, false
		}
		spans = append(spans, s)
	}
	if len(d.b) != 0 {
		return nil, false
	}
	return spans, true
}

// WriteFrame writes one frame. The payload must be shorter than MaxFrame.
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) >= MaxFrame {
		return fmt.Errorf("rpcwire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameChunk is the increment ReadFrame grows its buffer by for large
// payloads: allocation tracks bytes actually received, so a corrupt or
// hostile length prefix claiming a near-MaxFrame payload over a starved
// connection costs one chunk, not a gigabyte.
const frameChunk = 1 << 20

// ReadFrame reads one frame, reusing buf when it is large enough. For
// payloads beyond frameChunk the buffer grows incrementally as bytes
// arrive, so the allocation for a frame is bounded by what the peer
// actually sent (plus one chunk), never by the length prefix alone.
func ReadFrame(r io.Reader, buf []byte) (typ uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	if n >= MaxFrame {
		return 0, nil, fmt.Errorf("rpcwire: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) >= n || n <= frameChunk {
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		return hdr[4], buf, nil
	}
	buf = buf[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return 0, nil, err
		}
	}
	return hdr[4], buf, nil
}

// dec is a cursor over a reply/request payload; the first decode error
// sticks and poisons everything after it, so message decoders check err
// once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("rpcwire: truncated %s", what)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// u32s decodes a length-prefixed []uint32 (count, then values).
func (d *dec) u32s() []uint32 {
	n := d.u32()
	if d.err != nil || len(d.b) < 4*int(n) {
		d.fail("u32 array")
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[4*i:])
	}
	d.b = d.b[4*n:]
	return out
}

// nodes decodes a length-prefixed []graph.NodeID.
func (d *dec) nodes() []graph.NodeID {
	n := d.u32()
	if d.err != nil || len(d.b) < 4*int(n) {
		d.fail("node array")
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(int32(binary.LittleEndian.Uint32(d.b[4*i:])))
	}
	d.b = d.b[4*n:]
	return out
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || len(d.b) < int(n) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func appendU32s(b []byte, v []uint32) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

func appendNodes(b []byte, v []graph.NodeID) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

// MetaRequest asks an engine to report its published shape and version.
type MetaRequest struct {
	Budget budget.Header
}

func (m MetaRequest) Append(b []byte) []byte { return m.Budget.AppendBinary(b) }

func DecodeMetaRequest(b []byte) (MetaRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return MetaRequest{}, err
	}
	if len(rest) != 0 {
		return MetaRequest{}, fmt.Errorf("rpcwire: %d trailing bytes in meta request", len(rest))
	}
	return MetaRequest{Budget: h}, nil
}

// MetaReply reports an engine's published graph shape: the reply to
// TMeta, TApply and TPublish. LastBatch is the worker's durable
// apply-once watermark; the router seeds its batch-id counter from the
// fleet maximum so ids stay monotonic across router restarts.
type MetaReply struct {
	Nodes     uint64
	Edges     uint64
	Version   uint64
	LastBatch uint64
	Shift     uint32
	Shards    uint32
	Owned     []uint32 // shard ids this engine serves

	// Caps advertises optional protocol capabilities (CapTrace). Encoded
	// as a trailer only when non-zero, so a zero-caps reply is
	// byte-identical to the pre-trailer wire form; old routers ignore it.
	Caps uint32
	// Spans carries the worker's recorded spans back to a traced caller
	// (TApply replies). Empty for untraced requests.
	Spans []qtrace.Span
}

func (m MetaReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Nodes)
	b = binary.LittleEndian.AppendUint64(b, m.Edges)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, m.LastBatch)
	b = binary.LittleEndian.AppendUint32(b, m.Shift)
	b = binary.LittleEndian.AppendUint32(b, m.Shards)
	b = appendU32s(b, m.Owned)
	if m.Caps != 0 {
		var body [4]byte
		binary.LittleEndian.PutUint32(body[:], m.Caps)
		b = appendTrailer(b, tagCaps, body[:])
	}
	if len(m.Spans) > 0 {
		b = appendSpansTrailer(b, m.Spans)
	}
	return b
}

func DecodeMetaReply(b []byte) (MetaReply, error) {
	d := dec{b: b}
	m := MetaReply{
		Nodes:     d.u64(),
		Edges:     d.u64(),
		Version:   d.u64(),
		LastBatch: d.u64(),
		Shift:     d.u32(),
		Shards:    d.u32(),
		Owned:     d.u32s(),
	}
	if d.err == nil {
		t := parseTrailers(d.b)
		m.Caps, m.Spans = t.caps, t.spans
	}
	return m, d.err
}

// ShardRequest asks for shard Shard's CSR block at generation Version.
type ShardRequest struct {
	Budget  budget.Header
	Version uint64
	Shard   uint32
	// Trace, when non-nil, ties this request to a sampled caller-side
	// trace (optional trailer; old workers ignore it).
	Trace *TraceContext
}

func (m ShardRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint32(b, m.Shard)
	if m.Trace != nil {
		b = appendTraceTrailer(b, *m.Trace)
	}
	return b
}

func DecodeShardRequest(b []byte) (ShardRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return ShardRequest{}, err
	}
	d := dec{b: rest}
	m := ShardRequest{Budget: h, Version: d.u64(), Shard: d.u32()}
	if d.err == nil {
		m.Trace = parseTrailers(d.b).trace
	}
	return m, d.err
}

// ShardReply carries one shard's CSR adjacency block.
type ShardReply struct {
	CSR graph.CSRShard
	// Spans carries the worker's recorded spans for a traced request.
	Spans []qtrace.Span
}

func (m ShardReply) Append(b []byte) []byte {
	b = appendU32s(b, m.CSR.InOff)
	b = appendNodes(b, m.CSR.InDst)
	b = appendU32s(b, m.CSR.OutOff)
	b = appendNodes(b, m.CSR.OutDst)
	if len(m.Spans) > 0 {
		b = appendSpansTrailer(b, m.Spans)
	}
	return b
}

func DecodeShardReply(b []byte) (ShardReply, error) {
	d := dec{b: b}
	m := ShardReply{CSR: graph.CSRShard{
		InOff:  d.u32s(),
		InDst:  d.nodes(),
		OutOff: d.u32s(),
		OutDst: d.nodes(),
	}}
	if d.err == nil {
		m.Spans = parseTrailers(d.b).spans
	}
	return m, d.err
}

// WalkRequest asks the engine owning Cur's shard to continue a √c-walk:
// append at most Room nodes, drawing from the SplitMix64 stream at State.
type WalkRequest struct {
	Budget  budget.Header
	Version uint64
	SqrtC   float64
	Cur     graph.NodeID
	State   uint64
	Room    uint32
	// Trace, when non-nil, ties this request to a sampled caller-side
	// trace (optional trailer; old workers ignore it).
	Trace *TraceContext
}

func (m WalkRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.SqrtC))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Cur))
	b = binary.LittleEndian.AppendUint64(b, m.State)
	b = binary.LittleEndian.AppendUint32(b, m.Room)
	if m.Trace != nil {
		b = appendTraceTrailer(b, *m.Trace)
	}
	return b
}

func DecodeWalkRequest(b []byte) (WalkRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return WalkRequest{}, err
	}
	d := dec{b: rest}
	m := WalkRequest{Budget: h, Version: d.u64()}
	m.SqrtC = math.Float64frombits(d.u64())
	m.Cur = graph.NodeID(int32(d.u32()))
	m.State = d.u64()
	m.Room = d.u32()
	if d.err == nil {
		m.Trace = parseTrailers(d.b).trace
	}
	return m, d.err
}

// Walk segment statuses.
const (
	WalkEnded   uint8 = 0 // terminated (survival draw, dead end, or room)
	WalkHandoff uint8 = 1 // crossed to a shard this engine does not own
	WalkStopped uint8 = 2 // stopped by the propagated budget
)

// WalkReply returns the appended segment nodes and the stream state after
// them.
type WalkReply struct {
	State  uint64
	Status uint8
	Nodes  []graph.NodeID
	// Spans carries the worker's recorded spans for a traced request.
	Spans []qtrace.Span
}

func (m WalkReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.State)
	b = append(b, m.Status)
	b = appendNodes(b, m.Nodes)
	if len(m.Spans) > 0 {
		b = appendSpansTrailer(b, m.Spans)
	}
	return b
}

func DecodeWalkReply(b []byte) (WalkReply, error) {
	d := dec{b: b}
	m := WalkReply{State: d.u64(), Status: d.u8(), Nodes: d.nodes()}
	if d.err == nil {
		m.Spans = parseTrailers(d.b).spans
	}
	return m, d.err
}

// WalkStart is one walk of a WalkBatchRequest: continue a √c-walk whose
// current node is Cur, appending at most Room nodes, drawing from the
// SplitMix64 stream at State.
type WalkStart struct {
	Cur   graph.NodeID
	State uint64
	Room  uint32
}

const walkStartSize = 16

// WalkBatchRequest asks one engine to continue N walks in a single round
// trip. Every Cur must land in a shard the engine owns; each walk draws
// only from its own State, so the batch is semantically N independent
// WalkRequests — batching changes the wire shape, never the streams.
type WalkBatchRequest struct {
	Budget  budget.Header
	Version uint64
	SqrtC   float64
	Walks   []WalkStart
	// Trace, when non-nil, ties this request to a sampled caller-side
	// trace (optional trailer).
	Trace *TraceContext
}

func (m WalkBatchRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.SqrtC))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Walks)))
	for _, w := range m.Walks {
		b = binary.LittleEndian.AppendUint32(b, uint32(w.Cur))
		b = binary.LittleEndian.AppendUint64(b, w.State)
		b = binary.LittleEndian.AppendUint32(b, w.Room)
	}
	if m.Trace != nil {
		b = appendTraceTrailer(b, *m.Trace)
	}
	return b
}

func DecodeWalkBatchRequest(b []byte) (WalkBatchRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return WalkBatchRequest{}, err
	}
	d := dec{b: rest}
	m := WalkBatchRequest{Budget: h, Version: d.u64()}
	m.SqrtC = math.Float64frombits(d.u64())
	n := d.u32()
	if d.err == nil && len(d.b) < walkStartSize*int(n) {
		return WalkBatchRequest{}, fmt.Errorf("rpcwire: truncated walk batch")
	}
	m.Walks = make([]WalkStart, 0, n)
	for i := uint32(0); i < n; i++ {
		w := WalkStart{Cur: graph.NodeID(int32(d.u32()))}
		w.State = d.u64()
		w.Room = d.u32()
		m.Walks = append(m.Walks, w)
	}
	if d.err == nil {
		m.Trace = parseTrailers(d.b).trace
	}
	return m, d.err
}

// WalkSegmentResult is one walk's outcome within a WalkBatchReply,
// mirroring WalkReply.
type WalkSegmentResult struct {
	State  uint64
	Status uint8
	Nodes  []graph.NodeID
}

// WalkBatchReply returns one WalkSegmentResult per requested walk, in
// request order.
type WalkBatchReply struct {
	Segs []WalkSegmentResult
	// Spans carries the worker's recorded spans for a traced request.
	Spans []qtrace.Span
}

func (m WalkBatchReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Segs)))
	for _, s := range m.Segs {
		b = binary.LittleEndian.AppendUint64(b, s.State)
		b = append(b, s.Status)
		b = appendNodes(b, s.Nodes)
	}
	if len(m.Spans) > 0 {
		b = appendSpansTrailer(b, m.Spans)
	}
	return b
}

func DecodeWalkBatchReply(b []byte) (WalkBatchReply, error) {
	d := dec{b: b}
	n := d.u32()
	// Each segment is at least 13 bytes (state + status + empty node
	// array), so a hostile count cannot allocate past the payload.
	if d.err == nil && len(d.b) < 13*int(n) {
		return WalkBatchReply{}, fmt.Errorf("rpcwire: truncated walk batch reply")
	}
	m := WalkBatchReply{Segs: make([]WalkSegmentResult, 0, n)}
	for i := uint32(0); i < n; i++ {
		s := WalkSegmentResult{State: d.u64(), Status: d.u8(), Nodes: d.nodes()}
		m.Segs = append(m.Segs, s)
	}
	if d.err == nil {
		m.Spans = parseTrailers(d.b).spans
	}
	return m, d.err
}

// ShardsRequest asks for several shards' CSR blocks at generation
// Version in one round trip — the batched form of ShardRequest, used
// when a router materializes its composite view's dense adjacency.
type ShardsRequest struct {
	Budget  budget.Header
	Version uint64
	Shards  []uint32
	// Trace, when non-nil, ties this request to a sampled caller-side
	// trace (optional trailer).
	Trace *TraceContext
}

func (m ShardsRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = appendU32s(b, m.Shards)
	if m.Trace != nil {
		b = appendTraceTrailer(b, *m.Trace)
	}
	return b
}

func DecodeShardsRequest(b []byte) (ShardsRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return ShardsRequest{}, err
	}
	d := dec{b: rest}
	m := ShardsRequest{Budget: h, Version: d.u64(), Shards: d.u32s()}
	if d.err == nil {
		m.Trace = parseTrailers(d.b).trace
	}
	return m, d.err
}

// ShardsReply carries the requested CSR blocks in request order.
type ShardsReply struct {
	CSRs []graph.CSRShard
	// Spans carries the worker's recorded spans for a traced request.
	Spans []qtrace.Span
}

func (m ShardsReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.CSRs)))
	for _, c := range m.CSRs {
		b = appendU32s(b, c.InOff)
		b = appendNodes(b, c.InDst)
		b = appendU32s(b, c.OutOff)
		b = appendNodes(b, c.OutDst)
	}
	if len(m.Spans) > 0 {
		b = appendSpansTrailer(b, m.Spans)
	}
	return b
}

func DecodeShardsReply(b []byte) (ShardsReply, error) {
	d := dec{b: b}
	n := d.u32()
	// Each block is at least 16 bytes (four empty arrays), so a hostile
	// count cannot allocate past the payload.
	if d.err == nil && len(d.b) < 16*int(n) {
		return ShardsReply{}, fmt.Errorf("rpcwire: truncated shards reply")
	}
	m := ShardsReply{CSRs: make([]graph.CSRShard, 0, n)}
	for i := uint32(0); i < n; i++ {
		m.CSRs = append(m.CSRs, graph.CSRShard{
			InOff:  d.u32s(),
			InDst:  d.nodes(),
			OutOff: d.u32s(),
			OutDst: d.nodes(),
		})
	}
	if d.err == nil {
		m.Spans = parseTrailers(d.b).spans
	}
	return m, d.err
}

// Op is one edge mutation in an ApplyRequest.
type Op struct {
	Remove bool
	U, V   graph.NodeID
}

// ApplyRequest carries a batch of edge mutations, applied atomically
// (all-or-rollback) on the worker. Batch is the router-assigned batch
// id: a worker applies each id at most once (retries after a lost reply
// are no-ops) and logs it to its write-ahead log before applying when
// durability is on. Batch 0 means un-identified (legacy single-op
// paths); such batches are not retry-safe. The reply is a MetaReply
// with the worker's post-apply (unpublished) version and watermark.
type ApplyRequest struct {
	Budget budget.Header
	Batch  uint64
	Ops    []Op
	// Trace, when non-nil, ties this request to a sampled caller-side
	// trace (optional trailer; old workers ignore it).
	Trace *TraceContext
}

func (m ApplyRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Batch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Ops)))
	for _, op := range m.Ops {
		k := byte(0)
		if op.Remove {
			k = 1
		}
		b = append(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	if m.Trace != nil {
		b = appendTraceTrailer(b, *m.Trace)
	}
	return b
}

func DecodeApplyRequest(b []byte) (ApplyRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return ApplyRequest{}, err
	}
	d := dec{b: rest}
	batch := d.u64()
	n := d.u32()
	if d.err == nil && len(d.b) < 9*int(n) {
		return ApplyRequest{}, fmt.Errorf("rpcwire: truncated op array")
	}
	m := ApplyRequest{Budget: h, Batch: batch, Ops: make([]Op, 0, n)}
	for i := uint32(0); i < n; i++ {
		k := d.u8()
		if d.err == nil && k > 1 {
			return ApplyRequest{}, fmt.Errorf("rpcwire: op %d kind %d", i, k)
		}
		u := graph.NodeID(int32(d.u32()))
		v := graph.NodeID(int32(d.u32()))
		m.Ops = append(m.Ops, Op{Remove: k == 1, U: u, V: v})
	}
	if d.err == nil {
		m.Trace = parseTrailers(d.b).trace
	}
	return m, d.err
}

// PingRequest asks an engine for its version and durable watermark: the
// health-loop and replica catch-up probe. Unlike TMeta it does not pin a
// snapshot generation and carries no ownership list, so it stays cheap
// enough to fire every health tick against every fleet member.
type PingRequest struct {
	Budget budget.Header
}

func (m PingRequest) Append(b []byte) []byte { return m.Budget.AppendBinary(b) }

func DecodePingRequest(b []byte) (PingRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return PingRequest{}, err
	}
	if len(rest) != 0 {
		return PingRequest{}, fmt.Errorf("rpcwire: %d trailing bytes in ping request", len(rest))
	}
	return PingRequest{Budget: h}, nil
}

// PingReply reports the published snapshot version and the durable
// apply-once watermark. The router's health loop uses the pair to decide
// demotion, re-admission and how far a recovering replica must be caught
// up from the replay ring.
type PingReply struct {
	Version   uint64
	LastBatch uint64
}

func (m PingReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	return binary.LittleEndian.AppendUint64(b, m.LastBatch)
}

func DecodePingReply(b []byte) (PingReply, error) {
	d := dec{b: b}
	m := PingReply{Version: d.u64(), LastBatch: d.u64()}
	return m, d.err
}

// ErrorReply reports a handler failure.
type ErrorReply struct {
	Code uint8
	Msg  string
}

func (m ErrorReply) Append(b []byte) []byte {
	b = append(b, m.Code)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Msg)))
	return append(b, m.Msg...)
}

func DecodeErrorReply(b []byte) (ErrorReply, error) {
	d := dec{b: b}
	m := ErrorReply{Code: d.u8(), Msg: d.str()}
	return m, d.err
}
