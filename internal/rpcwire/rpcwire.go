// Package rpcwire is the binary wire codec of the cross-process shard
// plane: length-prefixed frames over a byte stream, with hand-rolled
// little-endian message encodings. The protocol is deliberately tiny —
// five request/reply pairs and an error frame — because the shard engine
// API it carries (report version / resolve adjacency spans / sample walk
// segments / apply mutations / publish) is tiny.
//
// Frame layout:
//
//	u32 payload length | u8 message type | payload
//
// Every REQUEST payload begins with a budget.Header (remaining deadline +
// remaining walk/work caps), so the worker can arm a meter equivalent to
// the router-side query's: a deadline that expired on the router stops a
// remote walk loop at its first poll, and a worker never keeps burning
// CPU for a query whose client already gave up.
//
// Replies carry no budget header. A handler failure of any kind travels
// as a TErr frame (code + message) so the client can distinguish
// semantic errors (unknown generation, bad shard id) from transport
// failures (broken/timed-out connection), which surface as I/O errors.
package rpcwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"probesim/internal/budget"
	"probesim/internal/graph"
)

// Message types.
const (
	TMeta     uint8 = iota + 1 // MetaRequest -> MetaReply: report version/shape
	TMetaRep                   // MetaReply
	TShard                     // ShardRequest -> ShardReply: resolve adjacency spans
	TShardRep                  // ShardReply
	TWalk                      // WalkRequest -> WalkReply: sample a walk segment
	TWalkRep                   // WalkReply
	TApply                     // ApplyRequest -> MetaReply: apply edge mutations
	TPublish                   // PublishRequest -> MetaReply: republish + report
	TErr                       // ErrorReply
	TPing                      // PingRequest -> PingReply: version/watermark probe
	TPingRep                   // PingReply
)

// Error codes carried by TErr frames.
const (
	CodeInternal    uint8 = 1 // handler failure (bad op, storage error)
	CodeRetiredGen  uint8 = 2 // requested generation no longer retained
	CodeBadRequest  uint8 = 3 // malformed or out-of-range request
	CodeUnavailable uint8 = 4 // retry-safe refusal (e.g. annulled WAL append); the batch id was not consumed
)

// MaxFrame bounds a frame's payload. A shard block of a billion-edge
// graph fits; a corrupt length prefix does not get to allocate the
// machine.
const MaxFrame = 1 << 30

// WriteFrame writes one frame. The payload must be shorter than MaxFrame.
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) >= MaxFrame {
		return fmt.Errorf("rpcwire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameChunk is the increment ReadFrame grows its buffer by for large
// payloads: allocation tracks bytes actually received, so a corrupt or
// hostile length prefix claiming a near-MaxFrame payload over a starved
// connection costs one chunk, not a gigabyte.
const frameChunk = 1 << 20

// ReadFrame reads one frame, reusing buf when it is large enough. For
// payloads beyond frameChunk the buffer grows incrementally as bytes
// arrive, so the allocation for a frame is bounded by what the peer
// actually sent (plus one chunk), never by the length prefix alone.
func ReadFrame(r io.Reader, buf []byte) (typ uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	if n >= MaxFrame {
		return 0, nil, fmt.Errorf("rpcwire: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) >= n || n <= frameChunk {
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		return hdr[4], buf, nil
	}
	buf = buf[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return 0, nil, err
		}
	}
	return hdr[4], buf, nil
}

// dec is a cursor over a reply/request payload; the first decode error
// sticks and poisons everything after it, so message decoders check err
// once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("rpcwire: truncated %s", what)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// u32s decodes a length-prefixed []uint32 (count, then values).
func (d *dec) u32s() []uint32 {
	n := d.u32()
	if d.err != nil || len(d.b) < 4*int(n) {
		d.fail("u32 array")
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[4*i:])
	}
	d.b = d.b[4*n:]
	return out
}

// nodes decodes a length-prefixed []graph.NodeID.
func (d *dec) nodes() []graph.NodeID {
	n := d.u32()
	if d.err != nil || len(d.b) < 4*int(n) {
		d.fail("node array")
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(int32(binary.LittleEndian.Uint32(d.b[4*i:])))
	}
	d.b = d.b[4*n:]
	return out
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || len(d.b) < int(n) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func appendU32s(b []byte, v []uint32) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

func appendNodes(b []byte, v []graph.NodeID) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

// MetaRequest asks an engine to report its published shape and version.
type MetaRequest struct {
	Budget budget.Header
}

func (m MetaRequest) Append(b []byte) []byte { return m.Budget.AppendBinary(b) }

func DecodeMetaRequest(b []byte) (MetaRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return MetaRequest{}, err
	}
	if len(rest) != 0 {
		return MetaRequest{}, fmt.Errorf("rpcwire: %d trailing bytes in meta request", len(rest))
	}
	return MetaRequest{Budget: h}, nil
}

// MetaReply reports an engine's published graph shape: the reply to
// TMeta, TApply and TPublish. LastBatch is the worker's durable
// apply-once watermark; the router seeds its batch-id counter from the
// fleet maximum so ids stay monotonic across router restarts.
type MetaReply struct {
	Nodes     uint64
	Edges     uint64
	Version   uint64
	LastBatch uint64
	Shift     uint32
	Shards    uint32
	Owned     []uint32 // shard ids this engine serves
}

func (m MetaReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Nodes)
	b = binary.LittleEndian.AppendUint64(b, m.Edges)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, m.LastBatch)
	b = binary.LittleEndian.AppendUint32(b, m.Shift)
	b = binary.LittleEndian.AppendUint32(b, m.Shards)
	return appendU32s(b, m.Owned)
}

func DecodeMetaReply(b []byte) (MetaReply, error) {
	d := dec{b: b}
	m := MetaReply{
		Nodes:     d.u64(),
		Edges:     d.u64(),
		Version:   d.u64(),
		LastBatch: d.u64(),
		Shift:     d.u32(),
		Shards:    d.u32(),
		Owned:     d.u32s(),
	}
	return m, d.err
}

// ShardRequest asks for shard Shard's CSR block at generation Version.
type ShardRequest struct {
	Budget  budget.Header
	Version uint64
	Shard   uint32
}

func (m ShardRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	return binary.LittleEndian.AppendUint32(b, m.Shard)
}

func DecodeShardRequest(b []byte) (ShardRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return ShardRequest{}, err
	}
	d := dec{b: rest}
	m := ShardRequest{Budget: h, Version: d.u64(), Shard: d.u32()}
	return m, d.err
}

// ShardReply carries one shard's CSR adjacency block.
type ShardReply struct {
	CSR graph.CSRShard
}

func (m ShardReply) Append(b []byte) []byte {
	b = appendU32s(b, m.CSR.InOff)
	b = appendNodes(b, m.CSR.InDst)
	b = appendU32s(b, m.CSR.OutOff)
	return appendNodes(b, m.CSR.OutDst)
}

func DecodeShardReply(b []byte) (ShardReply, error) {
	d := dec{b: b}
	m := ShardReply{CSR: graph.CSRShard{
		InOff:  d.u32s(),
		InDst:  d.nodes(),
		OutOff: d.u32s(),
		OutDst: d.nodes(),
	}}
	return m, d.err
}

// WalkRequest asks the engine owning Cur's shard to continue a √c-walk:
// append at most Room nodes, drawing from the SplitMix64 stream at State.
type WalkRequest struct {
	Budget  budget.Header
	Version uint64
	SqrtC   float64
	Cur     graph.NodeID
	State   uint64
	Room    uint32
}

func (m WalkRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.SqrtC))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Cur))
	b = binary.LittleEndian.AppendUint64(b, m.State)
	return binary.LittleEndian.AppendUint32(b, m.Room)
}

func DecodeWalkRequest(b []byte) (WalkRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return WalkRequest{}, err
	}
	d := dec{b: rest}
	m := WalkRequest{Budget: h, Version: d.u64()}
	m.SqrtC = math.Float64frombits(d.u64())
	m.Cur = graph.NodeID(int32(d.u32()))
	m.State = d.u64()
	m.Room = d.u32()
	return m, d.err
}

// Walk segment statuses.
const (
	WalkEnded   uint8 = 0 // terminated (survival draw, dead end, or room)
	WalkHandoff uint8 = 1 // crossed to a shard this engine does not own
	WalkStopped uint8 = 2 // stopped by the propagated budget
)

// WalkReply returns the appended segment nodes and the stream state after
// them.
type WalkReply struct {
	State  uint64
	Status uint8
	Nodes  []graph.NodeID
}

func (m WalkReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.State)
	b = append(b, m.Status)
	return appendNodes(b, m.Nodes)
}

func DecodeWalkReply(b []byte) (WalkReply, error) {
	d := dec{b: b}
	m := WalkReply{State: d.u64(), Status: d.u8(), Nodes: d.nodes()}
	return m, d.err
}

// Op is one edge mutation in an ApplyRequest.
type Op struct {
	Remove bool
	U, V   graph.NodeID
}

// ApplyRequest carries a batch of edge mutations, applied atomically
// (all-or-rollback) on the worker. Batch is the router-assigned batch
// id: a worker applies each id at most once (retries after a lost reply
// are no-ops) and logs it to its write-ahead log before applying when
// durability is on. Batch 0 means un-identified (legacy single-op
// paths); such batches are not retry-safe. The reply is a MetaReply
// with the worker's post-apply (unpublished) version and watermark.
type ApplyRequest struct {
	Budget budget.Header
	Batch  uint64
	Ops    []Op
}

func (m ApplyRequest) Append(b []byte) []byte {
	b = m.Budget.AppendBinary(b)
	b = binary.LittleEndian.AppendUint64(b, m.Batch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Ops)))
	for _, op := range m.Ops {
		k := byte(0)
		if op.Remove {
			k = 1
		}
		b = append(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	return b
}

func DecodeApplyRequest(b []byte) (ApplyRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return ApplyRequest{}, err
	}
	d := dec{b: rest}
	batch := d.u64()
	n := d.u32()
	if d.err == nil && len(d.b) < 9*int(n) {
		return ApplyRequest{}, fmt.Errorf("rpcwire: truncated op array")
	}
	m := ApplyRequest{Budget: h, Batch: batch, Ops: make([]Op, 0, n)}
	for i := uint32(0); i < n; i++ {
		k := d.u8()
		if d.err == nil && k > 1 {
			return ApplyRequest{}, fmt.Errorf("rpcwire: op %d kind %d", i, k)
		}
		u := graph.NodeID(int32(d.u32()))
		v := graph.NodeID(int32(d.u32()))
		m.Ops = append(m.Ops, Op{Remove: k == 1, U: u, V: v})
	}
	return m, d.err
}

// PingRequest asks an engine for its version and durable watermark: the
// health-loop and replica catch-up probe. Unlike TMeta it does not pin a
// snapshot generation and carries no ownership list, so it stays cheap
// enough to fire every health tick against every fleet member.
type PingRequest struct {
	Budget budget.Header
}

func (m PingRequest) Append(b []byte) []byte { return m.Budget.AppendBinary(b) }

func DecodePingRequest(b []byte) (PingRequest, error) {
	h, rest, err := budget.DecodeHeader(b)
	if err != nil {
		return PingRequest{}, err
	}
	if len(rest) != 0 {
		return PingRequest{}, fmt.Errorf("rpcwire: %d trailing bytes in ping request", len(rest))
	}
	return PingRequest{Budget: h}, nil
}

// PingReply reports the published snapshot version and the durable
// apply-once watermark. The router's health loop uses the pair to decide
// demotion, re-admission and how far a recovering replica must be caught
// up from the replay ring.
type PingReply struct {
	Version   uint64
	LastBatch uint64
}

func (m PingReply) Append(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, m.Version)
	return binary.LittleEndian.AppendUint64(b, m.LastBatch)
}

func DecodePingReply(b []byte) (PingReply, error) {
	d := dec{b: b}
	m := PingReply{Version: d.u64(), LastBatch: d.u64()}
	return m, d.err
}

// ErrorReply reports a handler failure.
type ErrorReply struct {
	Code uint8
	Msg  string
}

func (m ErrorReply) Append(b []byte) []byte {
	b = append(b, m.Code)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Msg)))
	return append(b, m.Msg...)
}

func DecodeErrorReply(b []byte) (ErrorReply, error) {
	d := dec{b: b}
	m := ErrorReply{Code: d.u8(), Msg: d.str()}
	return m, d.err
}
