package health

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestLivenessIsIndependentOfReadiness(t *testing.T) {
	var s State
	mux := http.NewServeMux()
	s.Register(mux)

	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before ready: %d", code)
	}
	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || body != "starting\n" {
		t.Fatalf("readyz before ready: %d %q", code, body)
	}

	s.SetReady(true)
	if code, body := get(t, mux, "/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("readyz after ready: %d %q", code, body)
	}
	if !s.Ready() {
		t.Fatal("Ready() false after SetReady")
	}

	// Draining flips readiness immediately but liveness stays up: the
	// load balancer drains while the process finishes in-flight work.
	s.SetDraining()
	if code, body := get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz while draining: %d %q", code, body)
	}
	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", code)
	}
	if s.Ready() || !s.Draining() {
		t.Fatalf("state: ready=%v draining=%v", s.Ready(), s.Draining())
	}
}
