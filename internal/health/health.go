// Package health separates liveness from readiness for every probesim
// process. /healthz answers 200 as soon as the process serves HTTP at
// all — restarting it would not help, so orchestrators should leave it
// alone. /readyz answers 200 only while the process is both ready
// (recovery finished, initial graph loaded) and not draining; load
// balancers use it to stop sending traffic BEFORE connections start
// closing during a graceful shutdown.
package health

import (
	"net/http"
	"sync/atomic"
)

// State is a process's liveness/readiness switchboard. The zero value
// is alive but not yet ready.
type State struct {
	ready    atomic.Bool
	draining atomic.Bool
}

// SetReady marks recovery/startup complete (or, with false, revokes it).
func (s *State) SetReady(ok bool) { s.ready.Store(ok) }

// SetDraining flips the drain bit: readiness goes 503 immediately while
// in-flight work finishes. Flip it BEFORE closing listeners so load
// balancers drain first.
func (s *State) SetDraining() { s.draining.Store(true) }

// Ready reports readiness: started up and not draining.
func (s *State) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Draining reports whether a graceful shutdown has begun.
func (s *State) Draining() bool { return s.draining.Load() }

// Register installs /healthz and /readyz on mux.
func (s *State) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
}

func (s *State) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *State) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("starting\n"))
	default:
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	}
}
