// Package cluster simulates the distributed Monte Carlo SimRank approach of
// Li et al. ("Walking in the cloud: parallel SimRank at scale", PVLDB
// 2015), the scale-out alternative the paper cites in §5: it reports 110
// hours of preprocessing on 10 machines with 3.77 TB of total memory to
// push the Monte Carlo estimator to a billion-node graph.
//
// We cannot reproduce that testbed, so we reproduce its *communication
// structure* instead (the substitution rule of DESIGN.md §5): the graph is
// hash-partitioned across P simulated machines, each owning the
// in-adjacency of its nodes; reverse √c-walks advance one step per BSP
// superstep and migrate between machines as messages whenever a step
// crosses a partition boundary, exactly as walk state does in a Pregel-like
// system. The Cost report counts supersteps, migrations, migrated bytes and
// broadcast bytes — the network overhead an index-free single-machine
// algorithm like ProbeSim never pays.
//
// The estimator itself is the pair-walk Monte Carlo estimator of §2.2:
// walk j from every node v is paired with walk j from the query node, and
// s̃(u, v) is the fraction of pairs that meet. Per-walk RNG streams are
// derived from (v, j) alone, so the returned estimates are bit-identical
// for any partition count — partitioning changes only the cost report,
// which is the property that makes the simulation trustworthy.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// Config configures the simulated cluster and the Monte Carlo estimator
// running on it.
type Config struct {
	// Partitions is the number of simulated machines P. Default 4.
	Partitions int
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// Eps is the absolute error target used to derive NumWalks. Default 0.1.
	Eps float64
	// Delta is the failure probability used to derive NumWalks. Default 0.01.
	Delta float64
	// NumWalks overrides the derived pair count when > 0.
	NumWalks int
	// Seed drives every walk. Default 1.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = 4
	}
	if c.C == 0 {
		c.C = 0.6
	}
	if c.Eps == 0 {
		c.Eps = 0.1
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Partitions < 1 {
		return fmt.Errorf("cluster: partition count %d < 1", c.Partitions)
	}
	if c.C <= 0 || c.C >= 1 {
		return fmt.Errorf("cluster: decay factor c = %v outside (0, 1)", c.C)
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("cluster: error target ε = %v outside (0, 1)", c.Eps)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("cluster: failure probability δ = %v outside (0, 1)", c.Delta)
	}
	return nil
}

// Cost reports the simulated communication and work of one query.
type Cost struct {
	// Partitions is the machine count the query ran with.
	Partitions int
	// Supersteps is the number of synchronous rounds until every walk
	// terminated.
	Supersteps int
	// Migrations counts walk states handed to a different machine; each is
	// one network message in the simulated system.
	Migrations int64
	// MigratedBytes is Migrations times the walk-state wire size.
	MigratedBytes int64
	// BroadcastEntries counts query-walk positions replicated to every
	// machine so walks can detect meetings locally.
	BroadcastEntries int64
	// BroadcastBytes is the wire size of those replicas.
	BroadcastBytes int64
	// WalksSimulated is the total number of √c-walks generated.
	WalksSimulated int64
	// MaxMachineWalks is the peak number of live walks on one machine in
	// any superstep — the load-balance indicator.
	MaxMachineWalks int64
}

// walkStateBytes is the wire size of a migrating walk: source id, trial id,
// current node, RNG state (4 + 4 + 4 + 8).
const walkStateBytes = 20

// uPosBytes is the wire size of one broadcast query-walk position: trial
// id, step, node.
const uPosBytes = 12

// Partitioner maps nodes to machines. The default is a multiplicative hash
// so that partitions behave like random node subsets (range partitioning
// would give generators with locality an unrealistically low cut).
type Partitioner func(v graph.NodeID) int

// HashPartitioner returns the default partitioner over p machines.
func HashPartitioner(p int) Partitioner {
	return func(v graph.NodeID) int {
		z := uint64(v) * 0x9e3779b97f4a7c15
		z ^= z >> 29
		return int(z % uint64(p))
	}
}

// walkState is one live walk on some machine.
type walkState struct {
	src graph.NodeID // the node whose similarity this walk estimates
	tr  int32        // trial index, pairing it with the query walk
	cur graph.NodeID
	rng xrand.RNG
}

// SingleSource estimates s(u, v) for every v on the simulated cluster and
// reports what the estimate cost in communication. The estimates are
// exactly the Monte Carlo pair estimates for the given seed, independent of
// cfg.Partitions.
func SingleSource(g *graph.Graph, u graph.NodeID, cfg Config) ([]float64, Cost, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, Cost{}, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, Cost{}, fmt.Errorf("cluster: node %d out of range [0, %d)", u, n)
	}
	r := cfg.NumWalks
	if r <= 0 {
		r = mc.PairWalks(cfg.Eps, cfg.Delta)
		// Union bound over the n targets of a single-source query.
		if n >= 2 {
			r = int(math.Ceil(math.Log(2*float64(n)/cfg.Delta) / (2 * cfg.Eps * cfg.Eps)))
		}
	}
	cost := Cost{Partitions: cfg.Partitions}
	part := HashPartitioner(cfg.Partitions)
	root := xrand.New(cfg.Seed)

	// Phase 1: the query node's r walks, simulated under the same BSP
	// machinery so their migrations are charged too. Their full position
	// tables are then broadcast to every machine.
	uWalks := make([][]graph.NodeID, r)
	runBSP(g, part, cfg, &cost, func(emit func(walkState)) {
		for j := 0; j < r; j++ {
			rng := root.Split(queryStream(j))
			uWalks[j] = []graph.NodeID{u}
			emit(walkState{src: u, tr: int32(j), cur: u, rng: *rng})
		}
	}, func(w *walkState, step int) bool {
		uWalks[w.tr] = append(uWalks[w.tr], w.cur)
		return false // query walks never retire early
	})
	for _, wj := range uWalks {
		cost.BroadcastEntries += int64(len(wj)) * int64(cfg.Partitions)
	}
	cost.BroadcastBytes = cost.BroadcastEntries * uPosBytes

	// Phase 2: r walks from every other node, retired on first meeting
	// with the paired query walk.
	counts := make([]int64, n)
	var countsMu sync.Mutex
	runBSP(g, part, cfg, &cost, func(emit func(walkState)) {
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == u {
				continue
			}
			for j := 0; j < r; j++ {
				rng := root.Split(pairStream(v, j, r))
				emit(walkState{src: graph.NodeID(v), tr: int32(j), cur: graph.NodeID(v), rng: *rng})
			}
		}
	}, func(w *walkState, step int) bool {
		wj := uWalks[w.tr]
		if step < len(wj) && wj[step] == w.cur {
			countsMu.Lock()
			counts[w.src]++
			countsMu.Unlock()
			return true
		}
		// Beyond the query walk's length no meeting is possible.
		return step >= len(wj)
	})

	est := make([]float64, n)
	inv := 1 / float64(r)
	for v := range est {
		est[v] = float64(counts[v]) * inv
	}
	est[u] = 1
	return est, cost, nil
}

// queryStream and pairStream derive per-walk RNG stream ids. They are
// functions of the walk identity only, never of the partitioning, which is
// what makes results partition-invariant.
func queryStream(j int) uint64      { return uint64(j) }
func pairStream(v, j, r int) uint64 { return uint64(r) + uint64(v)*uint64(r) + uint64(j) }

// runBSP drives one walk population to termination. seed emits the initial
// walks; visit is called when a walk arrives at a node at the given step
// (step >= 1) and reports whether the walk should retire. Each superstep
// advances every live walk by one reverse step; walks whose next node lives
// on a different machine are counted as migrations.
func runBSP(g *graph.Graph, part Partitioner, cfg Config, cost *Cost, seed func(emit func(walkState)), visit func(w *walkState, step int) bool) {
	p := cfg.Partitions
	sqrtC := math.Sqrt(cfg.C)
	inboxes := make([][]walkState, p)
	seed(func(w walkState) {
		inboxes[part(w.cur)] = append(inboxes[part(w.cur)], w)
		cost.WalksSimulated++
	})
	for step := 1; ; step++ {
		live := int64(0)
		for _, in := range inboxes {
			if int64(len(in)) > cost.MaxMachineWalks {
				cost.MaxMachineWalks = int64(len(in))
			}
			live += int64(len(in))
		}
		if live == 0 {
			break
		}
		if step > walk.HardCap {
			break // statistically invisible safety cap, matching package walk
		}
		cost.Supersteps++
		// Per-machine outboxes: outbox[from][to].
		outboxes := make([][][]walkState, p)
		var wg sync.WaitGroup
		for m := 0; m < p; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				out := make([][]walkState, p)
				for _, w := range inboxes[m] {
					if w.rng.Float64() >= sqrtC {
						continue // walk terminates
					}
					in := g.InNeighbors(w.cur)
					if len(in) == 0 {
						continue // dead end
					}
					w.cur = in[w.rng.Intn(len(in))]
					if visit(&w, step) {
						continue // retired (met, or can never meet)
					}
					out[part(w.cur)] = append(out[part(w.cur)], w)
				}
				outboxes[m] = out
			}(m)
		}
		wg.Wait()
		// Exchange: local handoffs are free, cross-machine ones are
		// messages.
		for m := range inboxes {
			inboxes[m] = inboxes[m][:0]
		}
		for from := 0; from < p; from++ {
			for to := 0; to < p; to++ {
				batch := outboxes[from][to]
				if len(batch) == 0 {
					continue
				}
				if from != to {
					cost.Migrations += int64(len(batch))
				}
				inboxes[to] = append(inboxes[to], batch...)
			}
		}
	}
	cost.MigratedBytes = cost.Migrations * walkStateBytes
}
