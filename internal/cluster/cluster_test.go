package cluster

import (
	"math"
	"testing"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/walk"
)

func TestPartitionInvariance(t *testing.T) {
	// The whole point of the simulation: changing the machine count must
	// change only the cost report, never the estimates.
	g := gen.ErdosRenyi(50, 250, 3)
	base, _, err := SingleSource(g, 2, Config{Partitions: 1, NumWalks: 200, Seed: 9})
	if err != nil {
		t.Fatalf("SingleSource(P=1): %v", err)
	}
	for _, p := range []int{2, 3, 7, 16} {
		est, _, err := SingleSource(g, 2, Config{Partitions: p, NumWalks: 200, Seed: 9})
		if err != nil {
			t.Fatalf("SingleSource(P=%d): %v", p, err)
		}
		for v := range est {
			if est[v] != base[v] {
				t.Fatalf("P=%d: estimate for node %d is %v, P=1 gave %v", p, v, est[v], base[v])
			}
		}
	}
}

func TestSinglePartitionHasNoMigrations(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 5)
	_, cost, err := SingleSource(g, 1, Config{Partitions: 1, NumWalks: 50, Seed: 2})
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if cost.Migrations != 0 || cost.MigratedBytes != 0 {
		t.Fatalf("one machine migrated %d walks (%d bytes); want 0", cost.Migrations, cost.MigratedBytes)
	}
	if cost.Supersteps == 0 {
		t.Fatal("no supersteps recorded")
	}
}

func TestMultiPartitionMigrates(t *testing.T) {
	g := gen.ErdosRenyi(60, 360, 7)
	_, cost, err := SingleSource(g, 1, Config{Partitions: 8, NumWalks: 100, Seed: 2})
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if cost.Migrations == 0 {
		t.Fatal("eight machines on a random graph migrated nothing; partitioner is broken")
	}
	if cost.MigratedBytes != cost.Migrations*walkStateBytes {
		t.Fatalf("MigratedBytes = %d, want Migrations × %d = %d",
			cost.MigratedBytes, walkStateBytes, cost.Migrations*walkStateBytes)
	}
}

func TestBroadcastScalesWithPartitions(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 11)
	_, c2, err := SingleSource(g, 3, Config{Partitions: 2, NumWalks: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, c8, err := SingleSource(g, 3, Config{Partitions: 8, NumWalks: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Same walks (partition-invariant), so broadcast entries scale exactly
	// with the machine count.
	if c8.BroadcastEntries != 4*c2.BroadcastEntries {
		t.Fatalf("broadcast entries: P=8 gives %d, P=2 gives %d; want exact 4x",
			c8.BroadcastEntries, c2.BroadcastEntries)
	}
	if c8.BroadcastBytes != c8.BroadcastEntries*uPosBytes {
		t.Fatalf("BroadcastBytes = %d, want entries × %d", c8.BroadcastBytes, uPosBytes)
	}
}

func TestAccuracyAgainstPowerMethod(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 13)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("power.SimRank: %v", err)
	}
	est, _, err := SingleSource(g, 5, Config{Partitions: 4, Eps: 0.05, Delta: 0.01, Seed: 17})
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if d := math.Abs(est[v] - truth.At(5, graph.NodeID(v))); d > 0.05 {
			t.Fatalf("|est − truth| = %v at node %d exceeds ε", d, v)
		}
	}
}

func TestWalkAccounting(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 19)
	r := 40
	_, cost, err := SingleSource(g, 0, Config{Partitions: 3, NumWalks: r, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(r) * int64(g.NumNodes()) // r query walks + (n−1)·r pair walks
	if cost.WalksSimulated != want {
		t.Fatalf("WalksSimulated = %d, want n·r = %d", cost.WalksSimulated, want)
	}
	if cost.Supersteps > 2*walk.HardCap+2 {
		t.Fatalf("Supersteps = %d exceeds the statistical cap", cost.Supersteps)
	}
	if cost.MaxMachineWalks <= 0 || cost.MaxMachineWalks > cost.WalksSimulated {
		t.Fatalf("MaxMachineWalks = %d out of range", cost.MaxMachineWalks)
	}
	if cost.Partitions != 3 {
		t.Fatalf("Cost.Partitions = %d, want 3", cost.Partitions)
	}
}

func TestSelfSimilarityAndZeroInDegree(t *testing.T) {
	g := gen.Star(6) // hub 0 -> leaves; hub has zero in-degree
	est, _, err := SingleSource(g, 0, Config{Partitions: 2, NumWalks: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 1 {
		t.Fatalf("s(0,0) = %v, want 1", est[0])
	}
	for v := 1; v < g.NumNodes(); v++ {
		if est[v] != 0 {
			t.Fatalf("similarity of leaf %d to a zero-in-degree hub = %v, want 0", v, est[v])
		}
	}
}

func TestValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 1)
	if _, _, err := SingleSource(g, -1, Config{}); err == nil {
		t.Error("negative node accepted")
	}
	if _, _, err := SingleSource(g, 100, Config{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, _, err := SingleSource(g, 0, Config{Partitions: -2}); err == nil {
		t.Error("negative partition count accepted")
	}
	if _, _, err := SingleSource(g, 0, Config{C: 1.2}); err == nil {
		t.Error("c > 1 accepted")
	}
	if _, _, err := SingleSource(g, 0, Config{Eps: 3}); err == nil {
		t.Error("eps > 1 accepted")
	}
	if _, _, err := SingleSource(g, 0, Config{Delta: 3}); err == nil {
		t.Error("delta > 1 accepted")
	}
}

func TestHashPartitionerBalanced(t *testing.T) {
	p := 8
	n := 8000
	part := HashPartitioner(p)
	counts := make([]int, p)
	for v := 0; v < n; v++ {
		m := part(graph.NodeID(v))
		if m < 0 || m >= p {
			t.Fatalf("partitioner returned machine %d outside [0, %d)", m, p)
		}
		counts[m]++
	}
	want := n / p
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("machine %d owns %d of %d nodes; want within 2x of %d", m, c, n, want)
		}
	}
}

func TestEstimatesAreProbabilities(t *testing.T) {
	g := gen.PreferentialAttachment(40, 3, 23)
	est, _, err := SingleSource(g, 2, Config{Partitions: 4, NumWalks: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range est {
		if s < 0 || s > 1 {
			t.Fatalf("est[%d] = %v outside [0, 1]", v, s)
		}
	}
}
