package cluster_test

import (
	"fmt"

	"probesim/internal/cluster"
	"probesim/internal/graph"
)

// The simulation's defining property: partitioning changes the
// communication bill, never the answer.
func Example() {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	one, c1, err := cluster.SingleSource(g, 1, cluster.Config{Partitions: 1, NumWalks: 500, Seed: 9})
	if err != nil {
		panic(err)
	}
	four, c4, err := cluster.SingleSource(g, 1, cluster.Config{Partitions: 4, NumWalks: 500, Seed: 9})
	if err != nil {
		panic(err)
	}
	same := true
	for v := range one {
		if one[v] != four[v] {
			same = false
		}
	}
	fmt.Printf("estimates identical across 1 and 4 machines: %v\n", same)
	fmt.Printf("messages on 1 machine: %d; on 4 machines: more than 0: %v\n",
		c1.Migrations, c4.Migrations > 0)
	// Output:
	// estimates identical across 1 and 4 machines: true
	// messages on 1 machine: 0; on 4 machines: more than 0: true
}
