// Package hotidx is the hot-source serving tier in front of the live
// ProbeSim kernel: it tracks source popularity with a space-saving top-K
// sketch fed by the query path, precomputes full single-source result
// vectors for the hot set on a bounded background pool (reusing
// core.Executor and its scratch pooling, pinned to a published snapshot
// generation), and answers hot-source queries from those entries at
// microsecond latency. Cold sources fall through to the live kernel
// completely unchanged.
//
// Freshness is incremental, not rebuild-the-world: every entry records
// the dependency set its computation actually touched (the shard-stride
// buckets of every adjacency access, captured by a recording view
// wrapper), and the tier subscribes to the applied-batch stream
// (shard.Store.SubscribeApplied). A batch invalidates exactly the entries
// whose dependency set it intersects; every other entry would re-execute
// bit-identically under the kernel's fixed seed, so serving it IS serving
// the live kernel's answer. Staleness is bounded by a watermark-lag
// metric (applied batches minus the oldest invalidated entry's batch)
// instead of by full rebuild cycles.
package hotidx

import (
	"sort"
	"sync"

	"probesim/internal/graph"
)

// SourceCount is one tracked source in the popularity sketch. Count is
// the space-saving estimate of how many times the source was queried; the
// true count lies in [Count-Err, Count].
type SourceCount struct {
	Node  graph.NodeID
	Count int64
	Err   int64
}

// Sketch is a space-saving (stream-summary) top-K frequency sketch over
// query sources: at most k counters, each Touch either increments an
// existing counter or replaces the minimum one, inheriting its count as
// the new counter's error bound. Any source with true frequency above
// total/k is guaranteed to be tracked. Safe for concurrent use; Touch is
// a mutex acquire plus an O(log k) heap fix, cheap enough for the query
// hot path.
type Sketch struct {
	mu    sync.Mutex
	k     int
	total int64
	items map[graph.NodeID]*skItem
	heap  []*skItem // min-heap by count
}

type skItem struct {
	node  graph.NodeID
	count int64
	err   int64
	pos   int
}

// NewSketch returns a sketch tracking at most k sources (minimum 1).
func NewSketch(k int) *Sketch {
	if k < 1 {
		k = 1
	}
	return &Sketch{k: k, items: make(map[graph.NodeID]*skItem, k)}
}

// Touch records one query for u.
func (s *Sketch) Touch(u graph.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if it, ok := s.items[u]; ok {
		it.count++
		s.siftDown(it.pos)
		return
	}
	if len(s.heap) < s.k {
		it := &skItem{node: u, count: 1, pos: len(s.heap)}
		s.items[u] = it
		s.heap = append(s.heap, it)
		s.siftUp(it.pos)
		return
	}
	// Space-saving replacement: the new source takes over the minimum
	// counter, inheriting its count as the overestimation bound.
	min := s.heap[0]
	delete(s.items, min.node)
	min.node = u
	min.err = min.count
	min.count++
	s.items[u] = min
	s.siftDown(0)
}

// Top returns up to limit tracked sources ordered by descending count
// (ties by ascending node id, for determinism).
func (s *Sketch) Top(limit int) []SourceCount {
	s.mu.Lock()
	out := make([]SourceCount, 0, len(s.heap))
	for _, it := range s.heap {
		out = append(out, SourceCount{Node: it.node, Count: it.count, Err: it.err})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Node < out[j].Node
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Tracked returns the number of sources currently tracked.
func (s *Sketch) Tracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}

// Total returns the number of Touch calls observed.
func (s *Sketch) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].count <= s.heap[i].count {
			return
		}
		s.swap(p, i)
		i = p
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && s.heap[l].count < s.heap[least].count {
			least = l
		}
		if r := 2*i + 2; r < n && s.heap[r].count < s.heap[least].count {
			least = r
		}
		if least == i {
			return
		}
		s.swap(least, i)
		i = least
	}
}

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].pos, s.heap[j].pos = i, j
}
