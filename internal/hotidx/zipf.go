package hotidx

import (
	"math"
	"sort"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// Zipf is a seeded Zipf(s) sampler over node ids [0, n): rank r (0-based)
// is drawn with probability proportional to 1/(r+1)^s. Production
// SimRank query mixes are Zipfian over sources, so this is the reference
// workload for the hot tier's benchmarks (s = 1.1 per the acceptance
// criteria). Sampling inverts the cumulative weight table by binary
// search — O(log n) per draw, exactly reproducible for a given seed.
//
// Rank r maps to node id (r*stride + stride/2) mod n with stride coprime
// to n, so the hot set is scattered across the id space (and across
// shards) instead of clustering at id 0; the offset keeps even rank 0 off
// node 0, which in generator graphs tends to be a structurally special
// (oldest, highest-degree) node.
type Zipf struct {
	cum []float64 // cumulative weights, cum[n-1] = total
	ids []graph.NodeID
	rng *xrand.RNG
}

// NewZipf builds a sampler over n nodes with exponent s and the given
// seed. n must be >= 1.
func NewZipf(n int, s float64, seed uint64) *Zipf {
	z := &Zipf{
		cum: make([]float64, n),
		ids: make([]graph.NodeID, n),
		rng: xrand.New(seed),
	}
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		z.cum[r] = total
	}
	stride := 7919 % n
	for stride < 1 || gcd(stride, n) != 1 {
		stride++ // smallest stride >= 7919 mod n coprime to n keeps the map a bijection
	}
	for r := 0; r < n; r++ {
		z.ids[r] = graph.NodeID((r*stride + stride/2) % n)
	}
	return z
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Next draws one node id.
func (z *Zipf) Next() graph.NodeID {
	u := z.rng.Float64() * z.cum[len(z.cum)-1]
	r := sort.SearchFloat64s(z.cum, u)
	if r >= len(z.ids) {
		r = len(z.ids) - 1
	}
	return z.ids[r]
}
