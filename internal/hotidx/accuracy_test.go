package hotidx

import (
	"context"
	"fmt"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

// TestHotTierAccuracyHarness is the accuracy harness the issue asks for:
// on an Erdős–Rényi and a power-law graph, hot-tier answers must (a) be
// bit-identical to the live kernel on the current published snapshot —
// the tier's actual contract — and (b) stay within the kernel's εa
// guarantee against exact SimRank ground truth, both in steady state and
// immediately after a churn burst. The mirror graph g receives exactly
// the edge ops the store applies, so post-churn ground truth is
// computable.
func TestHotTierAccuracyHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("ground-truth power iteration is slow")
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"erdos-renyi", gen.ErdosRenyi(200, 1200, 31)},
		{"power-law", gen.PreferentialAttachment(200, 4, 37)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			st, ex, tier := newTierOver(t, g, Config{MaxEntries: 8})
			sources := []graph.NodeID{3, 17, 42}

			for _, u := range sources {
				tier.Touch(u)
				waitHot(t, tier, ex, u)
			}
			checkHotAnswers(t, g, ex, tier, sources, "steady state")

			// Churn burst: 5 batches of edge additions, mirrored into g so
			// ground truth stays computable. Immediately after — before the
			// refresher has any chance to catch up — every hot-tier answer
			// must STILL match the live kernel: invalidated entries miss
			// (and the fallthrough is the live kernel itself), surviving
			// entries are bit-identical by the dependency-set argument.
			rng := xrand.New(99)
			n := g.NumNodes()
			for b := 0; b < 5; b++ {
				var ops []shard.EdgeOp
				for len(ops) < 4 {
					u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
					if u == v {
						continue
					}
					if err := g.AddEdge(u, v); err != nil {
						continue // duplicate; pick another
					}
					ops = append(ops, shard.EdgeOp{U: u, V: v})
				}
				if _, err := st.ApplyBatch(0, ops); err != nil {
					t.Fatalf("churn batch %d: %v", b, err)
				}
			}
			ex.Refresh()
			checkHotAnswers(t, g, ex, tier, sources, "immediately after churn")

			// Let the tier re-converge, then hold it to the same bar again.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if s := tier.Stats(); s.StaleEntries == 0 {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if s := tier.Stats(); s.StaleEntries != 0 {
				t.Fatalf("tier never re-converged after churn: %+v", s)
			}
			checkHotAnswers(t, g, ex, tier, sources, "after catch-up")
		})
	}
}

// checkHotAnswers asserts, for each source, that the answer the serving
// path would produce (hot entry if fresh, live kernel otherwise) is
// bit-identical to the live kernel and within 2εa of exact SimRank. The
// 2εa slack over the kernel's own εa keeps the harness off the δ failure
// tail; regressions this is meant to catch (serving a stale or
// wrong-snapshot vector) produce errors far above it.
func checkHotAnswers(t *testing.T, g *graph.Graph, ex *core.Executor, tier *Tier, sources []graph.NodeID, phase string) {
	t.Helper()
	truth, err := power.SimRank(g, power.Options{})
	if err != nil {
		t.Fatalf("%s: ground truth: %v", phase, err)
	}
	view := ex.Snapshot()
	for _, u := range sources {
		live, err := ex.SingleSourceOn(context.Background(), view, u)
		if err != nil {
			t.Fatalf("%s: live kernel for %d: %v", phase, u, err)
		}
		answer := live
		if scores, ok := tier.SingleSource(view, u); ok {
			assertBitIdentical(t, scores, live, fmt.Sprintf("%s: source %d", phase, u))
			answer = scores
		}
		maxErr := 0.0
		row := truth.Row(u)
		for v := range answer {
			if d := answer[v] - row[v]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
		if bound := 2 * testOpt().EpsA; maxErr > bound {
			t.Fatalf("%s: source %d: max error %.4f vs ground truth exceeds %.2f", phase, u, maxErr, bound)
		}
	}
}
