package hotidx

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// testOpt is the option set both the "live" executor and the tier build
// with in these tests. Workers is pinned so the bit-identity assertions
// below compare like with like even though kernel results are documented
// worker-count independent.
func testOpt() core.Options {
	return core.Options{EpsA: 0.2, Seed: 1, Workers: 2}
}

// newTierOver builds a sharded store + executor + tier wired the way the
// server wires them, with a fast reconcile cadence and a generous build
// budget (the budget must not trip: a stopped build is discarded by
// design, which would turn these tests into timing lotteries).
func newTierOver(t *testing.T, g *graph.Graph, cfg Config) (*shard.Store, *core.Executor, *Tier) {
	t.Helper()
	st := shard.NewStore(g, 8, 0)
	ex := core.NewExecutorOn(st, testOpt())
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = 4
	}
	cfg.Opt = testOpt()
	if cfg.RefreshBudget.IsZero() {
		cfg.RefreshBudget = core.Budget{Timeout: 5 * time.Second}
	}
	if cfg.MinHits == 0 {
		cfg.MinHits = 1
	}
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.BuildWorkers == 0 {
		cfg.BuildWorkers = testOpt().Workers
	}
	tier := New(ex, st.Partition().Shift(), cfg)
	st.SubscribeApplied(tier.OnBatch)
	t.Cleanup(tier.Close)
	return st, ex, tier
}

// waitHot polls until the tier serves src from the index, returning the
// served vector. Polling goes through SingleSource, so the polls also
// keep the source hot in the sketch.
func waitHot(t *testing.T, tier *Tier, ex *core.Executor, src graph.NodeID) []float64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if scores, ok := tier.SingleSource(ex.Snapshot(), src); ok {
			return scores
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("source %d never became hot: %+v", src, tier.Stats())
	return nil
}

func assertBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs live %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: scores[%d] = %v from index, %v live — hot tier must be bit-identical", label, i, got[i], want[i])
		}
	}
}

func TestTierServesBitIdenticalScores(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 11)
	_, ex, tier := newTierOver(t, g, Config{})

	const src = graph.NodeID(7)
	tier.Touch(src)
	got := waitHot(t, tier, ex, src)

	want, err := ex.SingleSourceOn(context.Background(), ex.Snapshot(), src)
	if err != nil {
		t.Fatalf("live kernel: %v", err)
	}
	assertBitIdentical(t, got, want, "hot entry")

	st := tier.Stats()
	if st.Hits < 1 || st.Builds < 1 {
		t.Fatalf("counters did not move: %+v", st)
	}
}

func TestTierInvalidatesOnTouchingBatchAndRebuilds(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 13)
	st, ex, tier := newTierOver(t, g, Config{})

	const src = graph.NodeID(5)
	tier.Touch(src)
	waitHot(t, tier, ex, src)

	// Mutate the source's own shard: its bucket is always in the entry's
	// dependency set, so this batch must invalidate the entry.
	if _, err := st.ApplyBatch(0, []shard.EdgeOp{{U: src, V: 399}}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	ex.Refresh()

	tier.mu.RLock()
	_, stillThere := tier.entries[src]
	tier.mu.RUnlock()
	if stillThere {
		t.Fatal("entry survived a batch touching its own shard")
	}
	if s := tier.Stats(); s.Invalidations < 1 {
		t.Fatalf("no invalidation recorded: %+v", s)
	}

	// The refresher rebuilds against the NEW snapshot; the served vector
	// must match the live kernel on that snapshot, not the old one.
	got := waitHot(t, tier, ex, src)
	want, err := ex.SingleSourceOn(context.Background(), ex.Snapshot(), src)
	if err != nil {
		t.Fatalf("live kernel: %v", err)
	}
	assertBitIdentical(t, got, want, "rebuilt entry")
}

// TestTierEntrySurvivesUnrelatedBatch is the dependency-set payoff: a
// write to a shard the entry's walks never touched must NOT invalidate
// it. The graph is two disconnected components aligned to shard strides,
// so the dependency set of a component-A source provably excludes
// component B's buckets.
func TestTierEntrySurvivesUnrelatedBatch(t *testing.T) {
	const n = 256 // 8 shards -> stride 32: component A = [0,32), B = [32,64)
	g := graph.New(n)
	for i := 0; i < 31; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		g.AddEdge(graph.NodeID(i+1), graph.NodeID(i))
	}
	for i := 32; i < 63; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	st, ex, tier := newTierOver(t, g, Config{})

	const src = graph.NodeID(3)
	tier.Touch(src)
	before := waitHot(t, tier, ex, src)

	// A component-B-only batch: touches bucket 1, never bucket 0.
	if _, err := st.ApplyBatch(0, []shard.EdgeOp{{U: 40, V: 55}}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	ex.Refresh()

	after, ok := tier.SingleSource(ex.Snapshot(), src)
	if !ok {
		t.Fatalf("entry for %d was invalidated by a batch outside its dependency set: %+v", src, tier.Stats())
	}
	assertBitIdentical(t, after, before, "surviving entry")
}

// TestTierMissesAfterNodeGrowth exercises the serve-time guard: AddNode
// bypasses the batch plane entirely, so the only defense is comparing the
// entry's build-time node count against the current view.
func TestTierMissesAfterNodeGrowth(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 17)
	st, ex, tier := newTierOver(t, g, Config{})

	const src = graph.NodeID(2)
	tier.Touch(src)
	waitHot(t, tier, ex, src)

	st.AddNode()
	ex.Refresh()
	if _, ok := tier.SingleSource(ex.Snapshot(), src); ok {
		t.Fatal("served an entry sized for the pre-growth node space")
	}
}

// TestTierYieldBlocksRebuildAndBoundsLag drives the foreground-pressure
// seam deterministically: with Yield pinned true the refresher may never
// build, so an invalidated entry stays dirty and the exported staleness
// bound (LagBatches) is non-zero until the pressure lifts.
func TestTierYieldBlocksRebuildAndBoundsLag(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 19)
	var pressure atomic.Bool
	st, ex, tier := newTierOver(t, g, Config{Yield: func() bool { return pressure.Load() }})

	const src = graph.NodeID(9)
	tier.Touch(src)
	waitHot(t, tier, ex, src)

	pressure.Store(true)
	if _, err := st.ApplyBatch(0, []shard.EdgeOp{{U: src, V: 299}}); err != nil {
		t.Fatalf("apply: %v", err)
	}
	ex.Refresh()

	// Give the refresher a few rounds to (not) rebuild.
	deadline := time.Now().Add(5 * time.Second)
	for tier.Stats().Yields == 0 && time.Now().Before(deadline) {
		tier.Touch(src)
		time.Sleep(2 * time.Millisecond)
	}
	s := tier.Stats()
	if s.Yields == 0 {
		t.Fatalf("refresher never yielded under pinned pressure: %+v", s)
	}
	if s.StaleEntries == 0 || s.LagBatches == 0 {
		t.Fatalf("invalidated entry not reported as stale while rebuilds yield: %+v", s)
	}
	if _, ok := tier.SingleSource(ex.Snapshot(), src); ok {
		t.Fatal("stale entry served while rebuild is blocked")
	}

	// Lift the pressure: the rebuild lands and the lag drains to zero.
	pressure.Store(false)
	waitHot(t, tier, ex, src)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := tier.Stats(); s.StaleEntries == 0 && s.LagBatches == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("staleness never drained after pressure lifted: %+v", tier.Stats())
}

// TestTierEvictsColdSources pins the sketch-driven working set: with
// MaxEntries 1 and MinHits 1, a hotter source displaces the current
// resident and the eviction counter moves.
func TestTierEvictsColdSources(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 23)
	_, ex, tier := newTierOver(t, g, Config{MaxEntries: 1})

	tier.Touch(1)
	waitHot(t, tier, ex, 1)

	// Make source 2 strictly hotter than 1's accumulated poll count.
	target := tier.Hot(1)[0].Count + 50
	for i := int64(0); i < target; i++ {
		tier.Touch(2)
	}
	waitHot(t, tier, ex, 2)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		tier.mu.RLock()
		_, oldThere := tier.entries[1]
		tier.mu.RUnlock()
		if !oldThere && tier.Stats().Evictions > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cold source never evicted: %+v", tier.Stats())
}

// TestTierObserveAppendWatermark checks the WAL-side watermark is
// monotonic and exported next to the applied one.
func TestTierObserveAppendWatermark(t *testing.T) {
	g := gen.PreferentialAttachment(100, 3, 29)
	_, _, tier := newTierOver(t, g, Config{})
	tier.ObserveAppend(3)
	tier.ObserveAppend(2) // stale observation must not regress
	tier.ObserveAppend(7)
	if s := tier.Stats(); s.WALWatermark != 7 {
		t.Fatalf("wal watermark = %d, want 7", s.WALWatermark)
	}
}
