package hotidx

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

// benchRig is a serving stack sized like a small production deployment:
// a 5000-node power-law graph behind a sharded store, live kernel at
// εa = 0.2, hot tier tracking the head of a Zipf(1.1) source mix.
func benchRig(tb testing.TB) (*shard.Store, *core.Executor, *Tier) {
	tb.Helper()
	g := gen.PreferentialAttachment(5000, 4, 41)
	st := shard.NewStore(g, 16, 0)
	ex := core.NewExecutorOn(st, core.Options{EpsA: 0.2, Seed: 1})
	tier := New(ex, st.Partition().Shift(), Config{
		MaxEntries:    16,
		Opt:           core.Options{EpsA: 0.2, Seed: 1},
		RefreshBudget: core.Budget{Timeout: 5 * time.Second},
		MinHits:       1,
		Interval:      2 * time.Millisecond,
	})
	st.SubscribeApplied(tier.OnBatch)
	tb.Cleanup(tier.Close)
	return st, ex, tier
}

func warmHotSet(tb testing.TB, ex *core.Executor, tier *Tier, z *Zipf, minEntries int) {
	tb.Helper()
	for i := 0; i < 5000; i++ {
		tier.Touch(z.Next())
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if tier.Stats().Entries >= minEntries {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("hot set never warmed to %d entries: %+v", minEntries, tier.Stats())
}

// BenchmarkHotVsLive compares the two serving paths on the same source:
// the hot tier's index probe vs the full live kernel. The issue's
// acceptance bar (hot p50 >= 10x faster at Zipf s=1.1) is asserted by
// TestZipfBenchSmoke; this benchmark is the per-path microscope.
func BenchmarkHotVsLive(b *testing.B) {
	_, ex, tier := benchRig(b)
	z := NewZipf(5000, 1.1, 7)
	warmHotSet(b, ex, tier, z, 8)
	hot := tier.Hot(1)[0].Node
	view := ex.Snapshot()
	if _, ok := tier.SingleSource(view, hot); !ok {
		b.Fatalf("hottest source %d not resident", hot)
	}

	b.Run("hot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := tier.SingleSource(view, hot); !ok {
				b.Fatal("hot entry vanished mid-benchmark")
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ex.SingleSourceOn(context.Background(), view, hot); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func percentileU64(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// TestZipfBenchSmoke is the acceptance benchmark, gated behind
// PROBESIM_BENCH_OUT (the path to write the JSON report to) so regular
// test runs stay fast. It replays a Zipf(s=1.1) source mix through the
// tiered serving path, measures hot vs live latency, then turns on a
// write storm and samples the exported refresh-lag distribution. It
// fails unless hot p50 is >= 10x faster than live p50.
func TestZipfBenchSmoke(t *testing.T) {
	out := os.Getenv("PROBESIM_BENCH_OUT")
	if out == "" {
		t.Skip("set PROBESIM_BENCH_OUT=<path> to run the Zipf bench smoke")
	}
	st, ex, tier := benchRig(t)
	const n, skew = 5000, 1.1
	z := NewZipf(n, skew, 7)
	warmHotSet(t, ex, tier, z, 8)

	var hotLat, liveLat []time.Duration
	deadline := time.Now().Add(60 * time.Second)
	for (len(hotLat) < 3000 || len(liveLat) < 200) && time.Now().Before(deadline) {
		u := z.Next()
		view := ex.Snapshot()
		t0 := time.Now()
		if _, ok := tier.SingleSource(view, u); ok {
			hotLat = append(hotLat, time.Since(t0))
			continue
		}
		if len(liveLat) >= 2000 {
			continue // enough live samples; don't burn the wall clock
		}
		if _, err := ex.SingleSourceOn(context.Background(), view, u); err != nil {
			t.Fatalf("live query for %d: %v", u, err)
		}
		liveLat = append(liveLat, time.Since(t0))
	}
	if len(hotLat) < 100 || len(liveLat) < 50 {
		t.Fatalf("not enough samples: %d hot, %d live (stats %+v)", len(hotLat), len(liveLat), tier.Stats())
	}

	// Write storm: one writer applying 4-edge batches as fast as it can
	// for ~1.5s while this goroutine samples the exported staleness bound.
	stop := make(chan struct{})
	stormDone := make(chan int)
	go func() {
		rng := xrand.New(131)
		applied := 0
		seen := make(map[[2]graph.NodeID]bool)
		for {
			select {
			case <-stop:
				stormDone <- applied
				return
			default:
			}
			var ops []shard.EdgeOp
			for len(ops) < 4 {
				u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
				if u == v || seen[[2]graph.NodeID{u, v}] {
					continue
				}
				seen[[2]graph.NodeID{u, v}] = true
				ops = append(ops, shard.EdgeOp{U: u, V: v})
			}
			// A random pair may already exist in the generated graph; that
			// rejects the whole batch, which is fine for a storm.
			if _, err := st.ApplyBatch(0, ops); err == nil {
				applied++
			}
			ex.Refresh()
		}
	}()
	var lags []uint64
	stormEnd := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(stormEnd) {
		lags = append(lags, tier.Stats().LagBatches)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	applied := <-stormDone

	sort.Slice(hotLat, func(i, j int) bool { return hotLat[i] < hotLat[j] })
	sort.Slice(liveLat, func(i, j int) bool { return liveLat[i] < liveLat[j] })
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	hotP50, hotP99 := percentile(hotLat, 0.50), percentile(hotLat, 0.99)
	liveP50, liveP99 := percentile(liveLat, 0.50), percentile(liveLat, 0.99)

	report := map[string]any{
		"workload": map[string]any{"nodes": n, "zipf_s": skew, "hot_capacity": 16, "eps_a": 0.2},
		"hot": map[string]any{
			"samples": len(hotLat), "p50_ns": hotP50.Nanoseconds(), "p99_ns": hotP99.Nanoseconds(),
		},
		"live": map[string]any{
			"samples": len(liveLat), "p50_ns": liveP50.Nanoseconds(), "p99_ns": liveP99.Nanoseconds(),
		},
		"speedup_p50": float64(liveP50) / float64(hotP50),
		"write_storm": map[string]any{
			"batches_applied": applied,
			"lag_batches": map[string]any{
				"samples": len(lags),
				"p50":     percentileU64(lags, 0.50),
				"p99":     percentileU64(lags, 0.99),
				"max":     lags[len(lags)-1],
			},
		},
		"tier_stats": tier.Stats(),
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatalf("create %s: %v", out, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("write report: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close report: %v", err)
	}
	t.Logf("hot p50=%v p99=%v (%d samples); live p50=%v p99=%v (%d samples); speedup p50 %.0fx; storm lag max %d over %d applied batches",
		hotP50, hotP99, len(hotLat), liveP50, liveP99, len(liveLat), float64(liveP50)/float64(hotP50), lags[len(lags)-1], applied)

	if hotP50*10 > liveP50 {
		t.Fatalf("hot p50 %v is not >= 10x faster than live p50 %v", hotP50, liveP50)
	}
}
