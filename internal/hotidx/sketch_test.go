package hotidx

import (
	"testing"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

func TestSketchTracksHeavyHitters(t *testing.T) {
	s := NewSketch(8)
	// A Zipf-ish stream: node 1 dominates, node 2 is second, a long tail
	// of singletons churns through the remaining counters.
	rng := xrand.New(7)
	for i := 0; i < 10_000; i++ {
		switch {
		case i%2 == 0:
			s.Touch(1)
		case i%4 == 1:
			s.Touch(2)
		default:
			s.Touch(graph.NodeID(100 + rng.Intn(5000)))
		}
	}
	if got := s.Tracked(); got > 8 {
		t.Fatalf("tracked %d sources, capacity 8", got)
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Node != 1 || top[1].Node != 2 {
		t.Fatalf("top-2 = %+v, want nodes 1 then 2", top)
	}
	// Space-saving guarantees count overestimates bounded by err, and the
	// true count lies in [Count-Err, Count].
	if true1 := int64(5000); top[0].Count-top[0].Err > true1 || top[0].Count < true1 {
		t.Fatalf("node 1: count %d err %d does not bracket true count %d", top[0].Count, top[0].Err, true1)
	}
	if s.Total() != 10_000 {
		t.Fatalf("total = %d, want 10000", s.Total())
	}
}

func TestSketchEvictsMinimum(t *testing.T) {
	s := NewSketch(2)
	s.Touch(10)
	s.Touch(10)
	s.Touch(20)
	// Capacity full: a new source replaces the minimum (20, count 1) and
	// inherits its count as error.
	s.Touch(30)
	top := s.Top(0)
	if len(top) != 2 {
		t.Fatalf("tracked %d, want 2", len(top))
	}
	if top[0].Node != 10 || top[0].Count != 2 || top[0].Err != 0 {
		t.Fatalf("surviving heavy hitter = %+v", top[0])
	}
	if top[1].Node != 30 || top[1].Count != 2 || top[1].Err != 1 {
		t.Fatalf("replacement = %+v, want node 30 count 2 err 1", top[1])
	}
}

func TestZipfDeterministicAndSkewed(t *testing.T) {
	a := NewZipf(1000, 1.1, 42)
	b := NewZipf(1000, 1.1, 42)
	counts := make(map[graph.NodeID]int)
	var hottest graph.NodeID
	first := a.Next()
	if got := b.Next(); got != first {
		t.Fatalf("same seed diverged: %d vs %d", first, got)
	}
	counts[first]++
	for i := 1; i < 20_000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, va, vb)
		}
		counts[va]++
		if counts[va] > counts[hottest] {
			hottest = va
		}
	}
	// At s=1.1 over 1000 items, rank 0 alone carries ~13% of the mass.
	if frac := float64(counts[hottest]) / 20_000; frac < 0.08 {
		t.Fatalf("hottest node carries %.1f%% of draws; the workload is not skewed", 100*frac)
	}
	// The rank->id scatter keeps the hot set off the low ids: the hottest
	// node should not be node 0 unless the stride degenerated.
	if hottest == 0 {
		t.Fatal("rank 0 mapped to node 0; ids are not scattered")
	}
}
