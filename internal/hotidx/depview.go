package hotidx

import (
	"context"
	"math/bits"
	"sync/atomic"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/graph"
)

// recordingView wraps a graph.View and records, into a shared bitset, the
// dependency bucket of every node whose adjacency or degree the kernel
// reads. Buckets use the store's shard stride (bucket = id >> shift), so
// a recorded dependency set speaks the same language as shard.EdgeOp
// endpoints and snapshot touched-shard sets: if no applied batch touches
// any bucket in an entry's set, re-running the (fixed-seed) kernel would
// read byte-identical adjacency and produce byte-identical scores.
//
// The wrapper deliberately does NOT implement graph.AdjProvider: that
// fast path would hand the kernel raw CSR shards and bypass the recording
// hooks. graph.ResolveAdj's default case routes every access back through
// this interface, which is exactly what makes the capture sound. Builds
// pay interface-dispatch cost for it; serving reads pay nothing.
type recordingView struct {
	inner graph.View
	shift uint32
	words []uint64 // shared across QueryBinder rebinds
}

func newRecordingView(inner graph.View, shift uint32) *recordingView {
	n := inner.NumNodes()
	buckets := (uint32(n) >> shift) + 1
	return &recordingView{
		inner: inner,
		shift: shift,
		words: make([]uint64, (buckets+63)/64),
	}
}

func (rv *recordingView) touch(v graph.NodeID) {
	b := uint32(v) >> rv.shift
	if w := b >> 6; int(w) < len(rv.words) {
		// The kernel reads adjacency from many workers at once; OR is
		// idempotent so lock-free accumulation is safe.
		atomic.OrUint64(&rv.words[w], 1<<(b&63))
	}
}

func (rv *recordingView) NumNodes() int   { return rv.inner.NumNodes() }
func (rv *recordingView) NumEdges() int64 { return rv.inner.NumEdges() }

func (rv *recordingView) InNeighbors(v graph.NodeID) []graph.NodeID {
	rv.touch(v)
	return rv.inner.InNeighbors(v)
}

func (rv *recordingView) OutNeighbors(u graph.NodeID) []graph.NodeID {
	rv.touch(u)
	return rv.inner.OutNeighbors(u)
}

func (rv *recordingView) InDegree(v graph.NodeID) int {
	rv.touch(v)
	return rv.inner.InDegree(v)
}

func (rv *recordingView) OutDegree(u graph.NodeID) int {
	rv.touch(u)
	return rv.inner.OutDegree(u)
}

// BindQuery forwards the kernel's budget binding to the wrapped view (a
// router-backed view swaps in a per-query remote session here) and
// re-wraps the bound view so recording continues, sharing the same
// bitset.
func (rv *recordingView) BindQuery(ctx context.Context, m *budget.Meter) (graph.View, func() error) {
	if b, ok := rv.inner.(core.QueryBinder); ok {
		bound, done := b.BindQuery(ctx, m)
		return &recordingView{inner: bound, shift: rv.shift, words: rv.words}, done
	}
	return rv, nil
}

// deps snapshots the recorded bucket set. Only meaningful after the
// build completes (concurrent walkers have stopped).
func (rv *recordingView) deps() depSet {
	out := make([]uint64, len(rv.words))
	for i := range rv.words {
		out[i] = atomic.LoadUint64(&rv.words[i])
	}
	return out
}

// depSet is a bitset over dependency buckets (shard indices when the
// tier sits on a shard.Store, since the shift is shared).
type depSet []uint64

func (d depSet) add(bucket uint32) {
	if w := bucket >> 6; int(w) < len(d) {
		d[w] |= 1 << (bucket & 63)
	}
}

func (d depSet) has(bucket uint32) bool {
	w := bucket >> 6
	return int(w) < len(d) && d[w]&(1<<(bucket&63)) != 0
}

func (d depSet) count() int {
	n := 0
	for _, w := range d {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersects reports whether any bucket in buckets is in the set.
func (d depSet) intersects(buckets []int) bool {
	for _, b := range buckets {
		if b >= 0 && d.has(uint32(b)) {
			return true
		}
	}
	return false
}
