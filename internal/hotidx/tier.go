package hotidx

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// Config tunes a Tier. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// MaxEntries bounds the number of precomputed hot-source entries
	// (default 64). Memory cost is one n-float64 vector per entry.
	MaxEntries int
	// Opt is the kernel option set entries are built with. It MUST equal
	// the live serving options (same seed, εa, mode, ...) — the hot
	// tier's whole contract is that a served entry is byte-identical to
	// what the live kernel would return right now, and that only holds
	// when both run the same plan. Workers and Budget are overridden per
	// build (results are worker-count independent; see below).
	Opt core.Options
	// RefreshBudget bounds each background build. It is forced non-zero
	// (default: 200ms timeout) so every refresh runs under an armed
	// budget.Meter — background work may never run unmetered.
	RefreshBudget core.Budget
	// MinHits is the sketch count a source needs before the tier spends
	// a build on it (default 2: never precompute for one-off sources).
	MinHits int64
	// Interval is the refresher's scan cadence (default 100ms). Applied
	// batches additionally wake it immediately.
	Interval time.Duration
	// BuildWorkers is the kernel worker count for background builds
	// (default max(1, GOMAXPROCS/2)). Safe to lower freely: ProbeSim
	// results are deterministic per (view, seed) and independent of the
	// worker count, so a half-width build is still bit-identical.
	BuildWorkers int
	// Yield, when non-nil, is polled before each build; true means
	// foreground load wants the CPU and the refresher ends its round.
	// The server wires this to its admission inflight gauge.
	Yield func() bool
}

// entry is one precomputed hot-source result, pinned to the snapshot
// generation it was built on plus the dependency buckets the build read.
type entry struct {
	source  graph.NodeID
	scores  []float64 // served as-is; callers must not modify
	n       int       // NumNodes at build time (AddNode guard)
	version uint64    // snapshot version at build time (debugging)
	batch   uint64    // applied-batch watermark at install time
	deps    depSet
}

// Tier is the hot-source serving tier. See the package comment for the
// design; the consistency contract in one line: an entry is served only
// while no applied batch has touched its recorded dependency set (or
// grown the node space), and under the kernel's fixed seed that means
// the served vector is byte-identical to what the live kernel would
// compute against the currently published view.
//
// All methods are safe for concurrent use. SingleSource is the query
// hot path: one sketch touch plus an RLock'd map probe.
type Tier struct {
	ex     *core.Executor
	shift  uint32
	cfg    Config
	sketch *Sketch

	mu        sync.RWMutex
	entries   map[graph.NodeID]*entry
	dirty     map[graph.NodeID]uint64 // source -> batch id that first invalidated it
	watermark uint64                  // highest applied-batch id observed

	walWatermark atomic.Uint64 // highest WAL-appended batch id observed

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	builds        atomic.Int64
	buildErrors   atomic.Int64
	evictions     atomic.Int64
	yields        atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	notify chan struct{}
	done   chan struct{}
}

// New builds a tier over ex and starts its background refresher. shift
// is the dependency-bucket stride in bits — pass the store partition's
// Shift() so buckets coincide with shard indices (and with the touched
// sets OnBatch and TouchedSince speak). Close releases the refresher.
func New(ex *core.Executor, shift uint32, cfg Config) *Tier {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 64
	}
	if cfg.RefreshBudget.IsZero() {
		cfg.RefreshBudget.Timeout = 200 * time.Millisecond
	}
	if cfg.MinHits <= 0 {
		cfg.MinHits = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.BuildWorkers <= 0 {
		cfg.BuildWorkers = runtime.GOMAXPROCS(0) / 2
		if cfg.BuildWorkers < 1 {
			cfg.BuildWorkers = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &Tier{
		ex: ex, shift: shift, cfg: cfg,
		// Track 4x the entry budget so sources rotating into the hot set
		// accumulate counts before they displace current members.
		sketch:  NewSketch(4 * cfg.MaxEntries),
		entries: make(map[graph.NodeID]*entry, cfg.MaxEntries),
		dirty:   make(map[graph.NodeID]uint64),
		ctx:     ctx, cancel: cancel,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go t.refresher()
	return t
}

// Close stops the refresher and cancels any in-flight build.
func (t *Tier) Close() {
	t.cancel()
	<-t.done
}

// Touch records query interest in u without consulting the index (used
// by the ?tier=live escape hatch and by walk observers, so bypassed or
// remote traffic still shapes the hot set).
func (t *Tier) Touch(u graph.NodeID) { t.sketch.Touch(u) }

// SingleSource answers u from the index if a fresh entry exists for the
// given published view. The returned slice is shared — callers must not
// modify it. A false return means the caller should run the live kernel
// unchanged (the entry may be missing, invalidated, or built for a
// smaller node space than view now has).
func (t *Tier) SingleSource(view graph.View, u graph.NodeID) ([]float64, bool) {
	t.sketch.Touch(u)
	t.mu.RLock()
	e, ok := t.entries[u]
	t.mu.RUnlock()
	if !ok || view == nil || e.n != view.NumNodes() {
		t.misses.Add(1)
		return nil, false
	}
	t.hits.Add(1)
	return e.scores, true
}

// OnBatch is the applied-batch subscription hook (wire it to
// shard.Store.SubscribeApplied). It advances the watermark and
// invalidates exactly the entries whose dependency set the batch's edge
// endpoints touch — everything else would re-execute bit-identically and
// stays servable. Called under the store's apply lock, so it only takes
// the tier lock and never calls back into the store.
func (t *Tier) OnBatch(id uint64, ops []shard.EdgeOp) {
	touched := make(map[uint32]struct{}, len(ops)*2)
	maxNode := graph.NodeID(0)
	for _, op := range ops {
		touched[uint32(op.U)>>t.shift] = struct{}{}
		touched[uint32(op.V)>>t.shift] = struct{}{}
		if op.U > maxNode {
			maxNode = op.U
		}
		if op.V > maxNode {
			maxNode = op.V
		}
	}
	t.mu.Lock()
	if id > t.watermark {
		t.watermark = id
	}
	for src, e := range t.entries {
		hit := graph.NodeID(e.n) <= maxNode // batch grows the node space past the entry's vector
		if !hit {
			for b := range touched {
				if e.deps.has(b) {
					hit = true
					break
				}
			}
		}
		if hit {
			delete(t.entries, src)
			if _, dirty := t.dirty[src]; !dirty {
				t.dirty[src] = id // first invalidation: the lag metric's anchor
			}
			t.invalidations.Add(1)
		}
	}
	t.mu.Unlock()
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// ObserveAppend tracks the WAL append watermark (wire it to
// wal.Log.Subscribe). The gap between it and the applied watermark is
// exported as a freshness signal; appends always lead applies under the
// append-then-apply write plane, so the gap is transient by design.
func (t *Tier) ObserveAppend(id uint64) {
	for {
		cur := t.walWatermark.Load()
		if id <= cur || t.walWatermark.CompareAndSwap(cur, id) {
			return
		}
	}
}

// TierStats is a point-in-time counter snapshot for /stats and /metrics.
type TierStats struct {
	Entries        int   // fresh precomputed entries
	StaleEntries   int   // invalidated hot sources awaiting rebuild
	TrackedSources int   // sources in the popularity sketch
	Hits           int64 // queries answered from the index
	Misses         int64 // queries that fell through to the live kernel
	Invalidations  int64 // entries dropped by applied batches
	Builds         int64 // background build attempts
	BuildErrors    int64 // builds that failed or lost the install race
	Evictions      int64 // entries dropped for falling out of the hot set
	Yields         int64 // refresher rounds cut short for foreground load

	Watermark    uint64 // highest applied-batch id observed
	WALWatermark uint64 // highest WAL-appended batch id observed
	// LagBatches bounds staleness: how many batches the oldest
	// invalidated entry is behind the applied watermark (0 = every hot
	// entry is fresh). This is the exported staleness bound.
	LagBatches uint64
}

// Stats returns current tier counters.
func (t *Tier) Stats() TierStats {
	t.mu.RLock()
	s := TierStats{
		Entries:      len(t.entries),
		StaleEntries: len(t.dirty),
		Watermark:    t.watermark,
	}
	oldest := uint64(0)
	for _, id := range t.dirty {
		if oldest == 0 || id < oldest {
			oldest = id
		}
	}
	if oldest > 0 && s.Watermark >= oldest {
		s.LagBatches = s.Watermark - oldest + 1
	}
	t.mu.RUnlock()
	s.TrackedSources = t.sketch.Tracked()
	s.Hits = t.hits.Load()
	s.Misses = t.misses.Load()
	s.Invalidations = t.invalidations.Load()
	s.Builds = t.builds.Load()
	s.BuildErrors = t.buildErrors.Load()
	s.Evictions = t.evictions.Load()
	s.Yields = t.yields.Load()
	s.WALWatermark = t.walWatermark.Load()
	return s
}

// Hot returns the sketch's current top sources (diagnostics).
func (t *Tier) Hot(limit int) []SourceCount { return t.sketch.Top(limit) }

// Handler serves tier stats and the hot-source list as JSON (mounted at
// /debug/hotsources on the worker's debug listener).
func (t *Tier) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Stats TierStats     `json:"stats"`
			Hot   []SourceCount `json:"hot"`
		}{t.Stats(), t.Hot(0)})
	})
}

// refresher is the single background goroutine: each round it reconciles
// the entry set against the sketch's current hot set, rebuilding missing
// or invalidated entries one at a time (kernel-internal parallelism is
// BuildWorkers wide) and evicting entries that went cold. Rounds run on
// Interval ticks and immediately after applied batches.
func (t *Tier) refresher() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.ctx.Done():
			return
		case <-tick.C:
		case <-t.notify:
		}
		t.reconcile()
	}
}

func (t *Tier) reconcile() {
	top := t.sketch.Top(t.cfg.MaxEntries)
	want := make(map[graph.NodeID]struct{}, len(top))
	var build []graph.NodeID
	t.mu.Lock()
	for _, sc := range top {
		if sc.Count < t.cfg.MinHits {
			continue
		}
		want[sc.Node] = struct{}{}
		if _, ok := t.entries[sc.Node]; !ok {
			build = append(build, sc.Node)
		}
	}
	for src := range t.entries {
		if _, ok := want[src]; !ok {
			delete(t.entries, src)
			t.evictions.Add(1)
		}
	}
	for src := range t.dirty {
		if _, ok := want[src]; !ok {
			delete(t.dirty, src) // went cold while stale: stop counting it against freshness
		}
	}
	t.mu.Unlock()
	for _, src := range build {
		if t.ctx.Err() != nil {
			return
		}
		if t.cfg.Yield != nil && t.cfg.Yield() {
			// Foreground admission wants the CPU; abandon the round.
			// Nothing is lost — the next tick resumes exactly here.
			t.yields.Add(1)
			return
		}
		t.buildOne(src)
	}
}

// buildOne precomputes one entry: pin the published snapshot, run the
// kernel through a recording view (capturing the dependency buckets),
// then install — unless the store moved under the build in a way that
// could affect it, in which case the result is discarded and the source
// stays pending (the install race check below).
func (t *Tier) buildOne(src graph.NodeID) {
	s0 := t.ex.Snapshot()
	if s0 == nil || int(src) >= s0.NumNodes() {
		t.mu.Lock()
		delete(t.dirty, src) // source does not exist in this graph; nothing to build
		t.mu.Unlock()
		return
	}
	t.mu.RLock()
	wm0 := t.watermark
	t.mu.RUnlock()

	rv := newRecordingView(s0, t.shift)
	opt := t.cfg.Opt
	opt.Budget = t.cfg.RefreshBudget
	opt.Workers = t.cfg.BuildWorkers
	t.builds.Add(1)
	scores, err := t.ex.SingleSourceOnWith(t.ctx, rv, src, opt)
	if err != nil {
		// Budget-stopped or canceled: a partial estimate is NOT
		// bit-identical to the live kernel, so it never enters the index.
		t.buildErrors.Add(1)
		return
	}
	deps := rv.deps()
	deps.add(uint32(src) >> t.shift) // the source's own bucket, even if never walked

	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.ex.Snapshot()
	if !t.installOK(s0, cur, deps, wm0) {
		t.buildErrors.Add(1)
		return
	}
	t.entries[src] = &entry{
		source: src, scores: scores,
		n: s0.NumNodes(), version: s0.Version(),
		batch: t.watermark, deps: deps,
	}
	delete(t.dirty, src)
}

// installOK is the install race check, called with t.mu held: a build
// ran against pinned snapshot s0 while writes kept flowing; the result
// may only be installed if nothing that could affect it happened since.
// Over a shard store that is precise — compare per-shard versions
// (TouchedSince) against the recorded dependency set, and reject if any
// applied batch is not yet visible in the published snapshot (the
// applied-but-unpublished window; the server publishes synchronously
// after apply, so it is microseconds wide). Over a generic provider the
// check degrades to "nothing moved at all".
func (t *Tier) installOK(s0, cur graph.VersionedView, deps depSet, wm0 uint64) bool {
	if cur == nil || cur.NumNodes() != s0.NumNodes() {
		return false
	}
	ss0, ok0 := s0.(*shard.StoreSnapshot)
	ssc, okc := cur.(*shard.StoreSnapshot)
	if ok0 && okc {
		if deps.intersects(ssc.TouchedSince(ss0)) {
			return false
		}
		return t.watermark <= ssc.LastBatch()
	}
	return cur.Version() == s0.Version() && t.watermark == wm0
}
