package probesim_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"probesim"
)

// The doc-comment quick start must work exactly as written.
func TestQuickStart(t *testing.T) {
	g := probesim.NewGraph(4)
	for _, e := range [][2]probesim.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	scores, err := probesim.SingleSource(context.Background(), g, 1, probesim.Options{EpsA: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 || scores[1] != 1 {
		t.Fatalf("scores = %v", scores)
	}
	// Nodes 1 and 2 share their only in-neighbor (0), so s(1,2) = c = 0.6.
	if math.Abs(scores[2]-0.6) > 0.05 {
		t.Fatalf("s(1,2) = %v, want 0.6 ± 0.05", scores[2])
	}
	top, err := probesim.TopK(context.Background(), g, 1, 2, probesim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Node != 2 {
		t.Fatalf("top-1 = %v, want node 2", top)
	}
}

func TestDynamicUpdatesAffectQueries(t *testing.T) {
	// Start: 0 -> 1, 0 -> 2 (nodes 1, 2 similar). Then rewire 2's
	// in-neighbor to 3: similarity collapses.
	g := probesim.NewGraph(4)
	for _, e := range [][2]probesim.NodeID{{0, 1}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	opt := probesim.Options{EpsA: 0.05, Seed: 3}
	before, err := probesim.SingleSource(context.Background(), g, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if before[2] < 0.5 {
		t.Fatalf("s(1,2) = %v, want ~0.6 before the update", before[2])
	}
	if err := g.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	after, err := probesim.SingleSource(context.Background(), g, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if after[2] > 0.05 {
		t.Fatalf("s(1,2) = %v after rewiring, want ~0", after[2])
	}
}

func TestLoadAndBinaryRoundTrip(t *testing.T) {
	g, err := probesim.LoadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := probesim.ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip lost edges: %d", g2.NumEdges())
	}
	if _, err := probesim.SingleSource(context.Background(), g2, 0, probesim.Options{NumWalks: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanForExposed(t *testing.T) {
	plan, err := probesim.PlanFor(probesim.Options{EpsA: 0.1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumWalks <= 0 || plan.MaxWalkNodes < 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if _, err := probesim.PlanFor(probesim.Options{C: 7}, 10); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestAllModesExposed(t *testing.T) {
	g := probesim.NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	for _, m := range []probesim.Mode{
		probesim.ModeAuto, probesim.ModeBasic, probesim.ModePruned,
		probesim.ModeBatch, probesim.ModeRandomized, probesim.ModeHybrid,
	} {
		if _, err := probesim.SingleSource(context.Background(), g, 1, probesim.Options{Mode: m, NumWalks: 50}); err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
	}
}
