package probesim_test

// Benchmarks for the extension studies E-A6..E-A10 (DESIGN.md §6): the
// precomputed-walk index, linearized SimRank, the simulated distributed MC
// cluster, similarity joins, and the supporting substrates they use.

import (
	"context"
	"testing"

	"probesim/internal/cluster"
	"probesim/internal/core"
	"probesim/internal/fingerprint"
	"probesim/internal/linear"
	"probesim/internal/prank"
	"probesim/internal/simjoin"
	"probesim/internal/trace"
)

// BenchmarkIndexesFingerprintBuild measures the E-A6 preprocessing cost the
// fingerprint index pays and ProbeSim does not.
func BenchmarkIndexesFingerprintBuild(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fingerprint.Build(g, fingerprint.BuildOptions{NumWalks: 400, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexesFingerprintQuery measures the E-A6 query-side payoff:
// single-source answers straight from the stored walks.
func BenchmarkIndexesFingerprintQuery(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	idx, err := fingerprint.Build(g, fingerprint.BuildOptions{NumWalks: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	u := benchQuery(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SingleSource(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearSingleSource measures the E-A7 linearized query kernel
// (given a diagonal): T sparse propagations, no εa dependence.
func BenchmarkLinearSingleSource(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	d := linear.NaiveDiagonal(g, 0.6)
	u := benchQuery(b, g)
	opt := linear.Options{C: 0.6, T: 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linear.SingleSource(g, u, d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearDiagonalMC measures the E-A7 preprocessing the corrected
// linearization needs before any query can run.
func BenchmarkLinearDiagonalMC(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	opt := linear.Options{C: 0.6, T: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linear.DiagonalMC(g, opt, linear.MCOptions{Pairs: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleOutCluster measures the E-A8 distributed MC query at the
// partition counts the experiment reports.
func BenchmarkScaleOutCluster(b *testing.B) {
	g := benchGraph(b, "wiki-vote-s")
	u := benchQuery(b, g)
	for _, p := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "p1", 4: "p4", 16: "p16"}[p], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := cluster.SingleSource(g, u, cluster.Config{
					Partitions: p, NumWalks: 400, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinTopK measures the E-A9 global top-k join (n single-source
// queries plus the merge).
func BenchmarkJoinTopK(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	opt := simjoin.Options{Query: core.Options{EpsA: 0.15, Seed: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simjoin.TopKJoin(context.Background(), g, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRank measures the P-Rank all-pairs power iteration on the toy
// scale it is meant for.
func BenchmarkPRank(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prank.Compute(g, prank.Options{Tolerance: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceUniform measures update-stream generation, the driver of
// the dynamic experiments.
func BenchmarkTraceUniform(b *testing.B) {
	g := benchGraph(b, "hepth-s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Uniform(g, 1000, 0.5, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgressiveTopK measures the any-time top-k (E-A12) against the
// static TopK on the same query: the separated/early-stop regime shows up
// as a large ns/op gap.
func BenchmarkProgressiveTopK(b *testing.B) {
	g := benchGraph(b, "wiki-vote-s")
	u := benchQuery(b, g)
	opt := core.Options{EpsA: 0.025, Seed: 1}
	b.Run("static", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TopK(context.Background(), g, u, 10, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("progressive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.TopKProgressive(context.Background(), g, u, 10, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChurnApply measures raw adjacency-edit throughput, the only
// "maintenance" ProbeSim pays under churn (E-A11).
func BenchmarkChurnApply(b *testing.B) {
	g := benchGraph(b, "hepth-s").Clone()
	ops, err := trace.Uniform(g, 2000, 0.5, 7)
	if err != nil {
		b.Fatal(err)
	}
	undo := trace.Inverse(ops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.Apply(g, ops); err != nil {
			b.Fatal(err)
		}
		if err := trace.Apply(g, undo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCC measures the iterative Tarjan pass used by the structure
// reports.
func BenchmarkSCC(b *testing.B) {
	g := benchGraph(b, "livejournal-s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.StronglyConnectedComponents()
	}
}
