// Package probesim_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation (§6), plus the ablation
// benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks measure the per-query kernels on the dataset stand-ins; the
// full tables/figures (with accuracy columns) come from
// `go run ./cmd/experiments`.
package probesim_test

import (
	"context"
	"sync"
	"testing"

	"probesim"
	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/metrics"
	"probesim/internal/pooling"
	"probesim/internal/power"
	"probesim/internal/probe"
	"probesim/internal/topsim"
	"probesim/internal/tsf"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// graphCache builds each dataset stand-in at most once per bench run.
var graphCache sync.Map

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := graphCache.Load(name); ok {
		return g.(*graph.Graph)
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build(1)
	graphCache.Store(name, g)
	return g
}

func benchQuery(b *testing.B, g *graph.Graph) graph.NodeID {
	b.Helper()
	rng := xrand.New(1234)
	for i := 0; i < 10000; i++ {
		v := rng.Int31n(int32(g.NumNodes()))
		if g.InDegree(v) > 0 {
			return v
		}
	}
	b.Fatal("no node with in-degree > 0")
	return 0
}

// BenchmarkTable2Toy regenerates Table 2 [E-T2]: the Power-Method ground
// truth of the toy graph.
func BenchmarkTable2Toy(b *testing.B) {
	g := graph.Toy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := power.SimRank(g, power.Options{C: 0.25, Tolerance: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SingleSource measures the Figure 4 single-source kernels
// [E-F4]: ProbeSim across the εa sweep on each small dataset.
func BenchmarkFig4SingleSource(b *testing.B) {
	for _, name := range []string{"wiki-vote-s", "hepth-s", "as-s", "hepph-s"} {
		g := benchGraph(b, name)
		u := benchQuery(b, g)
		for _, eps := range []float64{0.1, 0.05} {
			b.Run(name+"/ProbeSim-eps="+fmtEps(eps), func(b *testing.B) {
				opt := core.Options{EpsA: eps, Seed: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4Competitors measures the competitor single-source kernels
// of Figure 4 on the densest small graph.
func BenchmarkFig4Competitors(b *testing.B) {
	g := benchGraph(b, "hepph-s")
	u := benchQuery(b, g)
	b.Run("MC", func(b *testing.B) {
		opt := mc.Options{Eps: 0.1, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mc.SingleSource(g, u, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	idx := tsf.Build(g, tsf.BuildOptions{Rg: 300, Seed: 1})
	b.Run("TSF", func(b *testing.B) {
		opt := tsf.QueryOptions{Rq: 40, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.SingleSource(u, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, variant := range []topsim.Variant{topsim.TopSimSM, topsim.TrunTopSimSM, topsim.PrioTopSimSM} {
		b.Run(variant.String(), func(b *testing.B) {
			opt := topsim.Options{Variant: variant}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topsim.SingleSource(g, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig567TopK measures the Figures 5-7 top-k kernels [E-F5..7]:
// every algorithm answering top-50 on a small graph.
func BenchmarkFig567TopK(b *testing.B) {
	g := benchGraph(b, "as-s")
	u := benchQuery(b, g)
	const k = 50
	b.Run("ProbeSim", func(b *testing.B) {
		opt := core.Options{EpsA: 0.1, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TopK(context.Background(), g, u, k, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	idx := tsf.Build(g, tsf.BuildOptions{Rg: 300, Seed: 1})
	b.Run("TSF", func(b *testing.B) {
		opt := tsf.QueryOptions{Rq: 40, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.TopK(u, k, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, variant := range []topsim.Variant{topsim.TopSimSM, topsim.TrunTopSimSM, topsim.PrioTopSimSM} {
		b.Run(variant.String(), func(b *testing.B) {
			opt := topsim.Options{Variant: variant}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topsim.TopK(g, u, k, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Large measures the Table 4 large-graph query kernels
// [E-T4]: ProbeSim top-k on each large stand-in, plus TSF (reduced Rg; the
// full Rg=300 index is exercised by cmd/experiments) and Prio-TopSim on
// livejournal-s.
func BenchmarkTable4Large(b *testing.B) {
	for _, name := range []string{"livejournal-s", "it2004-s", "twitter-s", "friendster-s"} {
		g := benchGraph(b, name)
		u := benchQuery(b, g)
		b.Run(name+"/ProbeSim", func(b *testing.B) {
			opt := core.Options{EpsA: 0.1, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopK(context.Background(), g, u, 50, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	g := benchGraph(b, "livejournal-s")
	u := benchQuery(b, g)
	idx := tsf.Build(g, tsf.BuildOptions{Rg: 60, Seed: 1})
	b.Run("livejournal-s/TSF-Rg60", func(b *testing.B) {
		opt := tsf.QueryOptions{Rq: 40, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.TopK(u, 50, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("livejournal-s/Prio-TopSim", func(b *testing.B) {
		opt := topsim.Options{Variant: topsim.PrioTopSimSM, Budget: 300_000_000}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := topsim.TopK(g, u, 50, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8910Pooling measures the Figures 8-10 evaluation kernel
// [E-F8..10]: pooling two answer lists and scoring them with the MC
// expert on a large graph.
func BenchmarkFig8910Pooling(b *testing.B) {
	g := benchGraph(b, "livejournal-s")
	u := benchQuery(b, g)
	ps, err := core.TopK(context.Background(), g, u, 50, core.Options{EpsA: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	idx := tsf.Build(g, tsf.BuildOptions{Rg: 60, Seed: 1})
	tk, err := idx.TopK(u, 50, tsf.QueryOptions{Rq: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pool := pooling.Pool(nodesOf(ps), nodesOf(tk))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err := mc.MultiPair(g, u, pool, mc.Options{Eps: 0.02, Delta: 0.01, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		expert := func(v graph.NodeID) (float64, error) { return scores[v], nil }
		truth, _, err := pooling.GroundTruth(pool, expert, 50)
		if err != nil {
			b.Fatal(err)
		}
		_ = metrics.PrecisionAtK(nodesOf(ps), truth)
	}
}

// BenchmarkAblationModes compares the ProbeSim execution modes at the same
// εa [E-A1]: what pruning, batching and the hybrid each buy.
func BenchmarkAblationModes(b *testing.B) {
	g := benchGraph(b, "hepph-s")
	u := benchQuery(b, g)
	for _, mode := range []core.Mode{
		core.ModeBasic, core.ModePruned, core.ModeBatch,
		core.ModeRandomized, core.ModeHybrid, core.ModeAuto,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			opt := core.Options{EpsA: 0.1, Mode: mode, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers measures parallel scaling of a ProbeSim query.
func BenchmarkAblationWorkers(b *testing.B) {
	g := benchGraph(b, "livejournal-s")
	u := benchQuery(b, g)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmtInt(w), func(b *testing.B) {
			opt := core.Options{EpsA: 0.1, Workers: w, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicUpdates measures per-event maintenance [E-A3]: ProbeSim
// (adjacency only) versus TSF (adjacency plus index patch).
func BenchmarkDynamicUpdates(b *testing.B) {
	base := gen.PreferentialAttachment(20000, 10, 1)
	b.Run("ProbeSim-adjacency", func(b *testing.B) {
		g := base.Clone()
		rng := xrand.New(2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u, v := rng.Int31n(20000), rng.Int31n(20000)
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
			if err := g.RemoveEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TSF-index-maintenance", func(b *testing.B) {
		g := base.Clone()
		idx := tsf.Build(g, tsf.BuildOptions{Rg: 300, Seed: 1})
		rng := xrand.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u, v := rng.Int31n(20000), rng.Int31n(20000)
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
			idx.OnEdgeAdded(u, v)
			if err := g.RemoveEdge(u, v); err != nil {
				b.Fatal(err)
			}
			idx.OnEdgeRemoved(u, v)
		}
	})
}

// BenchmarkKernelWalk measures √c-walk generation, the innermost sampling
// primitive (§3.3 bounds its expected length by 1/(1−√c)).
func BenchmarkKernelWalk(b *testing.B) {
	g := benchGraph(b, "as-s")
	u := benchQuery(b, g)
	gen := walk.NewGenerator(g, 0.6, xrand.New(1))
	var buf []graph.NodeID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = gen.Generate(u, 0, buf)
	}
}

// BenchmarkKernelProbe measures one deterministic and one randomized probe
// on a fixed partial walk (Algorithms 2 and 4).
func BenchmarkKernelProbe(b *testing.B) {
	g := benchGraph(b, "hepph-s")
	gen := walk.NewGenerator(g, 0.6, xrand.New(3))
	// Find a node admitting a 4-node reverse walk (a walk this long may
	// not exist from every source, so scan sources too).
	var path []graph.NodeID
	rng := xrand.New(5)
	for attempt := 0; len(path) < 4; attempt++ {
		if attempt > 100000 {
			b.Fatal("no 4-node reverse walk found")
		}
		u := rng.Int31n(int32(g.NumNodes()))
		if g.InDegree(u) == 0 {
			continue
		}
		path = gen.Generate(u, 4, path)
	}
	s := probe.NewScratch(g.NumNodes())
	b.Run("deterministic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probe.Deterministic(g, path, 0.7746, 0, s)
		}
	})
	b.Run("deterministic-pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probe.Deterministic(g, path, 0.7746, 0.005, s)
		}
	})
	rrng := xrand.New(4)
	b.Run("randomized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probe.Randomized(g, path, 0.7746, rrng, s)
		}
	})
}

// BenchmarkPublicAPI measures the exported entry points end to end.
func BenchmarkPublicAPI(b *testing.B) {
	g := benchGraph(b, "as-s")
	u := benchQuery(b, g)
	b.Run("SingleSource", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := probesim.SingleSource(context.Background(), g, u, probesim.Options{EpsA: 0.1, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TopK", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := probesim.TopK(context.Background(), g, u, 50, probesim.Options{EpsA: 0.1, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func nodesOf(res []core.ScoredNode) []graph.NodeID {
	out := make([]graph.NodeID, len(res))
	for i, r := range res {
		out[i] = r.Node
	}
	return out
}

func fmtEps(e float64) string {
	if e == 0.1 {
		return "0.1"
	}
	return "0.05"
}

func fmtInt(w int) string {
	return map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[w]
}
