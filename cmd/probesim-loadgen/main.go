// Command probesim-loadgen replays deterministic multi-tenant load
// scenarios against a live probesim-server and reports per-tenant
// achieved service levels against their objectives — the harness behind
// the CI load-smoke leg, and a runbook tool for answering "what does
// THIS mix do to THAT deployment" with a seed instead of a shrug.
//
//	probesim-loadgen -target http://127.0.0.1:8080 -seed 7 -duration 10s \
//	  -mix "search,workers=4,think=2ms" \
//	  -mix "crawl,workers=8,think=0,writes=0.2,burst=8,slow=0.1" \
//	  -slo "search=250ms:0.999" \
//	  -assert "search.p99<=250ms" -assert "search.degraded==0"
//
// Each -mix describes one tenant's client population: `workers`
// concurrent clients issuing Zipf-distributed /topk reads (the
// production SimRank query mix is Zipfian over sources), `writes` the
// probability a client turn becomes a BURST of /edges/batch churn
// (add-then-remove cycles, so the graph returns to baseline), and
// `slow` the probability a request is sent by a deliberately slow
// client (dripped request/response bodies). Requests carry the
// X-ProbeSim-Tenant header; `maxepsa` adds the X-ProbeSim-Max-Epsa
// accuracy floor so the report's `degraded` counter distinguishes
// accepted degradation from refused.
//
// Everything random is derived from -seed through split streams, so a
// given flag set replays the same op sequence every run (timing, and
// therefore interleaving, still belongs to the scheduler — the
// determinism claim is about WHAT is sent, not when it lands).
//
// The report is one JSON document on stdout (or -out): per tenant the
// client-observed p50/p95/p99, availability, error/rejection/degrade
// counters, and met-or-not against the -slo objectives; plus the
// server's own /debug/slo snapshot for the server-side view of the same
// window. -assert turns report fields into exit-code contracts for CI:
// the process exits 2 if any assertion fails.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"probesim/internal/hotidx"
	"probesim/internal/slo"
	"probesim/internal/tenant"
	"probesim/internal/xrand"
)

// degradedHeader mirrors the server's response header naming the εa a
// degraded query was actually served at.
const degradedHeader = "X-ProbeSim-Degraded"

// mix is one tenant's client population and behavior.
type mix struct {
	Name      string
	Workers   int           // concurrent clients
	Think     time.Duration // mean inter-request delay per client (jittered ±50%)
	WriteFrac float64       // probability a turn is a write burst instead of a read
	Burst     int           // /edges/batch requests per write burst
	SlowFrac  float64       // probability a request is sent/consumed slowly
	MaxEpsa   float64       // X-ProbeSim-Max-Epsa accuracy floor (0 = no header)
	K         int           // /topk result count
}

// parseMix parses "name,key=value,..." — the tenant name first, then
// workers, think, writes, burst, slow, maxepsa, k.
func parseMix(s string) (mix, error) {
	m := mix{Workers: 2, Think: 2 * time.Millisecond, Burst: 4, K: 10}
	parts := strings.Split(s, ",")
	m.Name = strings.TrimSpace(parts[0])
	if m.Name == "" || strings.Contains(m.Name, "=") {
		return m, fmt.Errorf("mix %q: the first element is the tenant name", s)
	}
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return m, fmt.Errorf("mix %q: bad element %q (want key=value)", s, kv)
		}
		var err error
		switch key {
		case "workers":
			m.Workers, err = strconv.Atoi(val)
		case "think":
			m.Think, err = time.ParseDuration(val)
		case "writes":
			m.WriteFrac, err = strconv.ParseFloat(val, 64)
		case "burst":
			m.Burst, err = strconv.Atoi(val)
		case "slow":
			m.SlowFrac, err = strconv.ParseFloat(val, 64)
		case "maxepsa":
			m.MaxEpsa, err = strconv.ParseFloat(val, 64)
		case "k":
			m.K, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return m, fmt.Errorf("mix %q: %s=%s: %v", s, key, val, err)
		}
	}
	if m.Workers < 1 || m.Burst < 1 || m.K < 1 {
		return m, fmt.Errorf("mix %q: workers, burst and k must be >= 1", s)
	}
	return m, nil
}

// repeatable collects a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, "; ") }
func (r *repeatable) Set(s string) error { *r = append(*r, s); return nil }

// stats accumulates one tenant's client-side observations.
type stats struct {
	mu        sync.Mutex
	requests  int64
	writes    int64
	errors    int64 // status >= 500 (includes 503 rejections)
	rejected  int64 // status == 503
	transport int64 // client-side transport errors / timeouts
	degraded  int64 // responses carrying X-ProbeSim-Degraded
	slowSent  int64
	lats      []float64 // seconds, reads and writes alike
}

func (s *stats) observe(lat time.Duration, status int, degraded, isWrite, slow bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if isWrite {
		s.writes++
	}
	if slow {
		s.slowSent++
	}
	if status >= 500 {
		s.errors++
	}
	if status == 503 {
		s.rejected++
	}
	if degraded {
		s.degraded++
	}
	s.lats = append(s.lats, lat.Seconds())
}

func (s *stats) transportError() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.transport++
}

// quantile returns the nearest-rank q-quantile of sorted lats.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// tenantReport is one tenant's row in the JSON report.
type tenantReport struct {
	Tenant          string        `json:"tenant"`
	Requests        int64         `json:"requests"`
	Writes          int64         `json:"writes"`
	Errors          int64         `json:"errors"`
	Rejected        int64         `json:"rejected"`
	TransportErrors int64         `json:"transport_errors"`
	Degraded        int64         `json:"degraded"`
	SlowRequests    int64         `json:"slow_requests"`
	P50Ms           float64       `json:"p50_ms"`
	P95Ms           float64       `json:"p95_ms"`
	P99Ms           float64       `json:"p99_ms"`
	Availability    float64       `json:"availability"`
	Objective       slo.Objective `json:"objective"`
	LatencyMet      bool          `json:"latency_met"`
	AvailabilityMet bool          `json:"availability_met"`
}

type report struct {
	Target    string          `json:"target"`
	Seed      uint64          `json:"seed"`
	Duration  string          `json:"duration"`
	Nodes     int             `json:"nodes"`
	Zipf      float64         `json:"zipf"`
	Tenants   []tenantReport  `json:"tenants"`
	ServerSLO json.RawMessage `json:"server_slo,omitempty"`
}

// slowReader drips a request body in small chunks — a deliberately slow
// client holding the server's handler on the read side.
type slowReader struct {
	data  []byte
	chunk int
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	n := r.chunk
	if n > len(r.data) || n > len(p) {
		n = min(len(r.data), len(p))
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// churnEdge derives the i-th synthetic churn edge for a worker stream —
// a pure function of (stream, i), so the add burst and the remove burst
// that follows it name the SAME edges and the graph returns to baseline.
func churnEdge(stream uint64, i int, nodes int) (int, int) {
	r := xrand.New(stream + uint64(i)*0x9e3779b97f4a7c15)
	return r.Intn(nodes), r.Intn(nodes)
}

// worker is one client loop: Zipf reads, bursty write churn, slow sends,
// all decided by its own split RNG stream.
func worker(ctx context.Context, target string, m mix, streamSeed uint64, nodes int, zipfS float64, client *http.Client, st *stats) {
	rng := xrand.New(streamSeed)
	z := hotidx.NewZipf(nodes, zipfS, rng.Uint64())
	churnStream := rng.Uint64()
	bursts := 0
	for ctx.Err() == nil {
		if m.WriteFrac > 0 && rng.Bernoulli(m.WriteFrac) {
			// A write turn is a burst: Burst back-to-back batches with no
			// think between them — the bursty-churn shape that makes write
			// admission and snapshot republication earn their keep.
			for b := 0; b < m.Burst && ctx.Err() == nil; b++ {
				doWrite(ctx, target, m, churnStream, bursts, nodes, client, st, rng.Bernoulli(m.SlowFrac))
				bursts++
			}
		} else {
			doRead(ctx, target, m, int(z.Next()), client, st, rng.Bernoulli(m.SlowFrac))
		}
		if m.Think > 0 {
			d := m.Think/2 + time.Duration(rng.Float64()*float64(m.Think))
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
	}
}

func tenantHeaders(req *http.Request, m mix) {
	req.Header.Set(tenant.Header, m.Name)
	if m.MaxEpsa > 0 {
		req.Header.Set(tenant.MaxEpsaHeader, strconv.FormatFloat(m.MaxEpsa, 'g', -1, 64))
	}
}

func doRead(ctx context.Context, target string, m mix, u int, client *http.Client, st *stats, slow bool) {
	url := fmt.Sprintf("%s/topk?u=%d&k=%d", target, u, m.K)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		st.transportError()
		return
	}
	tenantHeaders(req, m)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.transportError()
		}
		return
	}
	drainBody(resp.Body, slow)
	st.observe(time.Since(start), resp.StatusCode, resp.Header.Get(degradedHeader) != "", false, slow)
}

func doWrite(ctx context.Context, target string, m mix, churnStream uint64, burst, nodes int, client *http.Client, st *stats, slow bool) {
	// Even bursts add a deterministic edge set, odd bursts remove the
	// same set: sustained churn, zero net drift.
	op := "add"
	if burst%2 == 1 {
		op = "remove"
	}
	type batchOp struct {
		Op string `json:"op"`
		U  int    `json:"u"`
		V  int    `json:"v"`
	}
	ops := make([]batchOp, 4)
	for i := range ops {
		u, v := churnEdge(churnStream, (burst/2)*len(ops)+i, nodes)
		ops[i] = batchOp{Op: op, U: u, V: v}
	}
	body, _ := json.Marshal(ops)
	var rd io.Reader = bytes.NewReader(body)
	if slow {
		rd = &slowReader{data: body, chunk: 8, delay: 10 * time.Millisecond}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/edges/batch", rd)
	if err != nil {
		st.transportError()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	tenantHeaders(req, m)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.transportError()
		}
		return
	}
	drainBody(resp.Body, slow)
	st.observe(time.Since(start), resp.StatusCode, resp.Header.Get(degradedHeader) != "", true, slow)
}

// drainBody consumes and closes a response body; slow consumers read it
// in dripped chunks.
func drainBody(body io.ReadCloser, slow bool) {
	defer body.Close()
	if !slow {
		io.Copy(io.Discard, body)
		return
	}
	buf := make([]byte, 64)
	for i := 0; i < 16; i++ {
		if _, err := body.Read(buf); err != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	io.Copy(io.Discard, body)
}

// evalAssert checks one "tenant.metric<op>value" contract against the
// report rows. Latency metrics compare against durations ("250ms"),
// everything else against plain numbers.
func evalAssert(expr string, rows map[string]tenantReport) error {
	ops := []string{"<=", ">=", "==", "!=", "<", ">"}
	var op string
	var at int
	for _, o := range ops {
		if i := strings.Index(expr, o); i > 0 {
			op, at = o, i
			break
		}
	}
	if op == "" {
		return fmt.Errorf("assert %q: no comparison operator", expr)
	}
	left, right := strings.TrimSpace(expr[:at]), strings.TrimSpace(expr[at+len(op):])
	tname, metric, ok := strings.Cut(left, ".")
	if !ok {
		return fmt.Errorf("assert %q: left side must be tenant.metric", expr)
	}
	row, ok := rows[tname]
	if !ok {
		return fmt.Errorf("assert %q: no tenant %q in the report", expr, tname)
	}
	var got float64
	durational := false
	switch metric {
	case "p50":
		got, durational = row.P50Ms, true
	case "p95":
		got, durational = row.P95Ms, true
	case "p99":
		got, durational = row.P99Ms, true
	case "availability":
		got = row.Availability
	case "requests":
		got = float64(row.Requests)
	case "writes":
		got = float64(row.Writes)
	case "errors":
		got = float64(row.Errors)
	case "rejected":
		got = float64(row.Rejected)
	case "transport_errors":
		got = float64(row.TransportErrors)
	case "degraded":
		got = float64(row.Degraded)
	default:
		return fmt.Errorf("assert %q: unknown metric %q", expr, metric)
	}
	var want float64
	if d, err := time.ParseDuration(right); err == nil && durational {
		want = d.Seconds() * 1000
	} else {
		f, err := strconv.ParseFloat(right, 64)
		if err != nil {
			return fmt.Errorf("assert %q: bad value %q", expr, right)
		}
		want = f
	}
	pass := false
	switch op {
	case "<=":
		pass = got <= want
	case ">=":
		pass = got >= want
	case "==":
		pass = got == want
	case "!=":
		pass = got != want
	case "<":
		pass = got < want
	case ">":
		pass = got > want
	}
	if !pass {
		return fmt.Errorf("assert %q FAILED: %s.%s = %g (want %s %g)", expr, tname, metric, got, op, want)
	}
	return nil
}

// waitReady polls /readyz until the server answers 200 or the window
// expires, so the CI script can exec loadgen right after booting the
// fleet without its own readiness dance.
func waitReady(target string, window time.Duration, client *http.Client) error {
	deadline := time.Now().Add(window)
	for {
		resp, err := client.Get(target + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", window, err)
			}
			return fmt.Errorf("server not ready after %v", window)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "probesim-server base URL")
		seed     = flag.Uint64("seed", 1, "master seed; every random decision derives from it")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		nodes    = flag.Int("nodes", 1000, "node id space for Zipf reads and churn writes (match the graph)")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf exponent for read sources")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		wait     = flag.Duration("wait", 10*time.Second, "poll /readyz up to this long before starting (0 = don't)")
		sloSpec  = flag.String("slo", "", "per-tenant objectives \"name=p99:availability,...\" the report grades against")
		sloDef   = flag.String("slo-default", "1s:0.99", "objective for tenants without an explicit -slo entry")
		outPath  = flag.String("out", "", "write the JSON report here instead of stdout")
	)
	var mixSpecs, asserts repeatable
	flag.Var(&mixSpecs, "mix", "tenant mix \"name,workers=4,think=2ms,writes=0.05,burst=4,slow=0,maxepsa=0,k=10\" (repeatable)")
	flag.Var(&asserts, "assert", "report contract \"tenant.metric<op>value\", e.g. \"search.p99<=250ms\" or \"search.degraded==0\" (repeatable; exit 2 on failure)")
	flag.Parse()

	if len(mixSpecs) == 0 {
		mixSpecs = repeatable{"default,workers=4,think=2ms,writes=0.02"}
	}
	mixes := make([]mix, 0, len(mixSpecs))
	for _, s := range mixSpecs {
		m, err := parseMix(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "probesim-loadgen: %v\n", err)
			os.Exit(1)
		}
		mixes = append(mixes, m)
	}
	def, err := slo.ParseObjective(*sloDef)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probesim-loadgen: -slo-default: %v\n", err)
		os.Exit(1)
	}
	objectives, err := slo.ParseObjectives(*sloSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probesim-loadgen: -slo: %v\n", err)
		os.Exit(1)
	}

	client := &http.Client{Timeout: *timeout}
	if *wait > 0 {
		if err := waitReady(*target, *wait, client); err != nil {
			fmt.Fprintf(os.Stderr, "probesim-loadgen: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	master := xrand.New(*seed)
	allStats := make(map[string]*stats, len(mixes))
	var wg sync.WaitGroup
	for mi, m := range mixes {
		st := &stats{}
		allStats[m.Name] = st
		for w := 0; w < m.Workers; w++ {
			streamSeed := master.SplitState(uint64(mi)<<16 | uint64(w))
			wg.Add(1)
			go func(m mix, seed uint64) {
				defer wg.Done()
				worker(ctx, *target, m, seed, *nodes, *zipfS, client, st)
			}(m, streamSeed)
		}
	}
	wg.Wait()

	rep := report{Target: *target, Seed: *seed, Duration: duration.String(), Nodes: *nodes, Zipf: *zipfS}
	rows := make(map[string]tenantReport, len(mixes))
	for _, m := range mixes {
		st := allStats[m.Name]
		sort.Float64s(st.lats)
		obj, ok := objectives[m.Name]
		if !ok {
			obj = def
		}
		served := st.requests - st.errors - st.transport
		avail := 1.0
		if st.requests > 0 {
			avail = float64(served) / float64(st.requests)
		}
		p99 := quantile(st.lats, 0.99)
		row := tenantReport{
			Tenant:          m.Name,
			Requests:        st.requests,
			Writes:          st.writes,
			Errors:          st.errors,
			Rejected:        st.rejected,
			TransportErrors: st.transport,
			Degraded:        st.degraded,
			SlowRequests:    st.slowSent,
			P50Ms:           quantile(st.lats, 0.50) * 1000,
			P95Ms:           quantile(st.lats, 0.95) * 1000,
			P99Ms:           p99 * 1000,
			Availability:    avail,
			Objective:       obj,
			LatencyMet:      p99 <= obj.P99.Seconds(),
			AvailabilityMet: avail >= obj.Availability,
		}
		rep.Tenants = append(rep.Tenants, row)
		rows[m.Name] = row
	}
	// The server-side view of the same run, best effort: a dead server at
	// report time is itself worth seeing in the report (absent field).
	if resp, err := client.Get(*target + "/debug/slo"); err == nil {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode == 200 && json.Valid(raw) {
			rep.ServerSLO = raw
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "probesim-loadgen: writing -out: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}

	failed := false
	for _, a := range asserts {
		if err := evalAssert(a, rows); err != nil {
			fmt.Fprintf(os.Stderr, "probesim-loadgen: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "probesim-loadgen: assert %q ok\n", a)
		}
	}
	if failed {
		os.Exit(2)
	}
}
