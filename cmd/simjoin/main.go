// Command simjoin runs SimRank similarity joins over an edge-list or
// binary graph file: either every pair above a similarity threshold or the
// globally most similar k pairs. Output is one tab-separated line per pair
// (u, v, score), sorted by descending score. Examples:
//
//	simjoin -graph web.txt -theta 0.2
//	simjoin -graph social.bin -binary -k 25
//	gengraph -type sbm -blocks 3 | simjoin -theta 0.15
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"probesim"
)

func main() {
	var (
		path       = flag.String("graph", "", "graph file (default stdin)")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "insert both directions per edge-list line")
		theta      = flag.Float64("theta", 0, "similarity threshold (0 = use -k instead)")
		k          = flag.Int("k", 10, "number of pairs for the top-k join")
		eps        = flag.Float64("eps", 0.05, "absolute error εa of each similarity estimate")
		c          = flag.Float64("c", 0.6, "SimRank decay factor")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "concurrent single-source queries (0 = all cores)")
	)
	flag.Parse()

	in := os.Stdin
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var (
		g   *probesim.Graph
		err error
	)
	if *binary {
		g, err = probesim.ReadBinaryGraph(bufio.NewReader(in))
	} else {
		g, err = probesim.LoadEdgeList(bufio.NewReader(in), *undirected)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "simjoin: loaded n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	opt := probesim.JoinOptions{
		Query:   probesim.Options{C: *c, EpsA: *eps, Seed: *seed},
		Workers: *workers,
	}
	// Ctrl-C cancels the join: dispatch stops and in-flight per-source
	// queries stop at their next kernel checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var pairs []probesim.Pair
	if *theta > 0 {
		pairs, err = probesim.ThresholdJoin(ctx, g, *theta, opt)
	} else {
		pairs, err = probesim.TopKJoin(ctx, g, *k, opt)
	}
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pairs {
		fmt.Fprintf(w, "%d\t%d\t%.6f\n", p.U, p.V, p.Score)
	}
	fmt.Fprintf(os.Stderr, "simjoin: %d pairs\n", len(pairs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simjoin:", err)
	os.Exit(1)
}
