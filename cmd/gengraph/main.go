// Command gengraph writes synthetic graphs (the generators behind the
// dataset stand-ins) as edge-list or binary files. Examples:
//
//	gengraph -type pa -n 100000 -deg 14 -o lj.txt
//	gengraph -type rmat -scale 16 -m 2300000 -o tw.bin -format binary
//	gengraph -type dataset -name wiki-vote-s -o wv.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"probesim/internal/dataset"
	"probesim/internal/gen"
	"probesim/internal/graph"
)

func main() {
	var (
		typ    = flag.String("type", "pa", "generator: er, pa, undirected-pa, rmat, core-periphery, ws, sbm, grid, complete, dataset")
		n      = flag.Int("n", 10000, "node count (er, pa, undirected-pa, core-periphery core size, ws, complete)")
		m      = flag.Int64("m", 100000, "edge count (er, rmat)")
		deg    = flag.Int("deg", 10, "per-node out-degree (pa, undirected-pa, core-periphery periphery; ws lattice degree, even)")
		scale  = flag.Int("scale", 16, "log2 node count (rmat)")
		nPeri  = flag.Int("periphery", 0, "periphery node count (core-periphery)")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		blocks = flag.Int("blocks", 3, "community count (sbm)")
		bsize  = flag.Int("block-size", 100, "community size (sbm)")
		pin    = flag.Float64("p-in", 0.1, "within-community edge probability (sbm)")
		pout   = flag.Float64("p-out", 0.005, "cross-community edge probability (sbm)")
		rows   = flag.Int("rows", 100, "grid rows")
		cols   = flag.Int("cols", 100, "grid cols")
		name   = flag.String("name", "", "dataset stand-in name (type=dataset)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "", "output path (default stdout)")
		format = flag.String("format", "text", "output format: text, binary")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "er":
		g = gen.ErdosRenyi(*n, *m, *seed)
	case "pa":
		g = gen.PreferentialAttachment(*n, *deg, *seed)
	case "undirected-pa":
		g = gen.UndirectedPA(*n, *deg, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *m, 0.57, 0.19, 0.19, 0.05, *seed)
	case "core-periphery":
		peri := *nPeri
		if peri == 0 {
			peri = 2 * *n
		}
		g = gen.CorePeriphery(*n, peri, *m, *deg, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *deg, *beta, *seed)
	case "sbm":
		sizes := make([]int, *blocks)
		for i := range sizes {
			sizes[i] = *bsize
		}
		g = gen.StochasticBlockModel(sizes, *pin, *pout, *seed)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "complete":
		g = gen.Complete(*n)
	case "dataset":
		spec, err := dataset.ByName(*name)
		if err != nil {
			fatal(err)
		}
		g = spec.Build(*seed)
	default:
		fatal(fmt.Errorf("unknown generator %q", *typ))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "text":
		err = g.WriteEdgeList(w)
	case "binary":
		err = g.WriteBinary(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	stats := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "gengraph: wrote n=%d m=%d (max in-degree %d, %d zero in-degree)\n",
		stats.Nodes, stats.Edges, stats.MaxInDegree, stats.ZeroInDeg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
