// Command experiments regenerates the paper's tables and figures (§6) on
// the synthetic dataset stand-ins. Examples:
//
//	experiments -exp table2          # toy-graph ground truth (Table 2)
//	experiments -exp fig4            # single-source error/time (Figure 4)
//	experiments -exp fig5            # top-k quality/time (Figures 5-7)
//	experiments -exp table4          # large-graph time/space (Table 4)
//	experiments -exp fig8            # pooled quality (Figures 8-10)
//	experiments -exp ablation        # ProbeSim mode ablation
//	experiments -exp dynamic         # update-cost study
//	experiments -exp indexes         # fingerprint index contrast (E-A6)
//	experiments -exp linear          # linearized-formulation bias (E-A7)
//	experiments -exp scaleout        # distributed MC communication (E-A8)
//	experiments -exp join            # similarity joins (E-A9)
//	experiments -exp coverage        # statistical guarantee validation (E-A10)
//	experiments -exp churn           # structured churn patterns (E-A11)
//	experiments -exp progressive     # any-time top-k (E-A12)
//	experiments -exp all -quick      # smoke-run everything
//
// Absolute numbers differ from the paper (synthetic stand-ins at reduced
// scale, different hardware); the comparisons are what reproduce. See
// EXPERIMENTS.md for the recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"

	"probesim/internal/exp"
)

func main() {
	var (
		name     = flag.String("exp", "all", "experiment to run: all, table2, table3, fig4, fig5..fig7, table4, fig8..fig10, ablation, dynamic, sling, sensitivity, indexes, linear, scaleout, join, coverage, churn, progressive")
		seed     = flag.Uint64("seed", 1, "master random seed")
		qSmall   = flag.Int("queries-small", 20, "query nodes per small dataset (paper: 100)")
		qLarge   = flag.Int("queries-large", 5, "query nodes per large dataset (paper: 20)")
		k        = flag.Int("k", 50, "top-k cutoff")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		quick    = flag.Bool("quick", false, "shrink datasets and query counts for a fast smoke run")
		mc       = flag.Bool("include-mc", false, "add the Monte Carlo competitor to the small-graph experiments")
		expert   = flag.Float64("expert-eps", 0.01, "pooling expert absolute error (paper: 1e-4; smaller = slower)")
		tsfRg    = flag.Int("tsf-rg", 300, "TSF one-way graph count Rg")
		tsfRq    = flag.Int("tsf-rq", 40, "TSF reuse count Rq")
		epsLarge = flag.Float64("eps-large", 0.1, "ProbeSim eps_a on large graphs")
	)
	flag.Parse()

	cfg := exp.Config{
		Out:          os.Stdout,
		Seed:         *seed,
		QueriesSmall: *qSmall,
		QueriesLarge: *qLarge,
		K:            *k,
		Workers:      *workers,
		Quick:        *quick,
		IncludeMC:    *mc,
		ExpertEps:    *expert,
		TSFRg:        *tsfRg,
		TSFRq:        *tsfRq,
		EpsLarge:     *epsLarge,
	}
	if err := exp.Run(*name, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
