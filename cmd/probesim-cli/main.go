// Command probesim-cli answers single-source and top-k SimRank queries on
// a graph file using ProbeSim. Examples:
//
//	probesim-cli -graph web.txt -query 42 -k 10
//	probesim-cli -graph social.bin -binary -query 7 -epsa 0.05 -mode hybrid
//	probesim-cli -graph coauthors.txt -undirected -query 0 -single-source -top 20
//	probesim-cli -graph web.txt -query 42 -k 10 -progressive
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"probesim"
)

var modes = map[string]probesim.Mode{
	"auto":       probesim.ModeAuto,
	"basic":      probesim.ModeBasic,
	"pruned":     probesim.ModePruned,
	"batch":      probesim.ModeBatch,
	"randomized": probesim.ModeRandomized,
	"hybrid":     probesim.ModeHybrid,
}

func main() {
	var (
		path       = flag.String("graph", "", "graph file (edge list, or binary with -binary)")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		query      = flag.Int("query", 0, "query node id")
		k          = flag.Int("k", 10, "top-k size")
		ss         = flag.Bool("single-source", false, "print the full single-source vector statistics instead of top-k")
		top        = flag.Int("top", 10, "with -single-source, also print this many top entries")
		epsA       = flag.Float64("epsa", 0.1, "absolute error bound eps_a")
		delta      = flag.Float64("delta", 0.01, "failure probability")
		c          = flag.Float64("c", 0.6, "SimRank decay factor")
		mode       = flag.String("mode", "auto", "execution mode: auto, basic, pruned, batch, randomized, hybrid")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		prog       = flag.Bool("progressive", false, "answer top-k with the any-time algorithm (stops early when the ranking separates)")
		timeout    = flag.Duration("timeout", 0, "query deadline (0 = none); an expired query prints the budget error")
		maxWalks   = flag.Int64("max-walks", 0, "cap on √c-walk trials (0 = the plan's derived count)")
		maxWork    = flag.Int64("max-probe-work", 0, "cap on probe edge traversals (0 = uncapped)")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("missing -graph"))
	}
	m, ok := modes[*mode]
	if !ok {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var g *probesim.Graph
	start := time.Now()
	if *binary {
		g, err = probesim.ReadBinaryGraph(f)
	} else {
		g, err = probesim.LoadEdgeList(f, *undirected)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded n=%d m=%d in %v\n", g.NumNodes(), g.NumEdges(), time.Since(start).Round(time.Millisecond))

	opt := probesim.Options{
		C: *c, EpsA: *epsA, Delta: *delta, Mode: m, Seed: *seed, Workers: *workers,
		Budget: probesim.Budget{Timeout: *timeout, MaxWalks: *maxWalks, MaxProbeWork: *maxWork},
	}
	// Ctrl-C cancels the in-flight query at its next kernel checkpoint
	// instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	plan, err := probesim.PlanFor(opt, g.NumNodes())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: mode=%v walks=%d eps=%.4g eps_t=%.4g eps_p=%.4g max-walk=%d\n",
		plan.Mode, plan.NumWalks, plan.Eps, plan.EpsT, plan.EpsP, plan.MaxWalkNodes)

	u := probesim.NodeID(*query)
	start = time.Now()
	if *ss {
		scores, err := probesim.SingleSource(ctx, g, u, opt)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		nonzero := 0
		for v, s := range scores {
			if probesim.NodeID(v) != u && s > 0 {
				nonzero++
			}
		}
		fmt.Printf("single-source from %d: %d nodes with non-zero similarity (%v)\n", u, nonzero, elapsed.Round(time.Microsecond))
		type pair struct {
			v probesim.NodeID
			s float64
		}
		var best []pair
		for v, s := range scores {
			if probesim.NodeID(v) != u {
				best = append(best, pair{probesim.NodeID(v), s})
			}
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].s != best[j].s {
				return best[i].s > best[j].s
			}
			return best[i].v < best[j].v
		})
		if *top < len(best) {
			best = best[:*top]
		}
		for i, p := range best {
			fmt.Printf("%3d. node %-10d s = %.5f\n", i+1, p.v, p.s)
		}
	} else if *prog {
		res, stats, err := probesim.TopKProgressive(ctx, g, u, *k, opt)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("progressive top-%d from %d (%v): %d/%d walks, %d rounds, radius %.4g, separated=%v\n",
			*k, u, elapsed.Round(time.Microsecond),
			stats.Walks, stats.BudgetWalks, stats.Rounds, stats.Radius, stats.Separated)
		for i, r := range res {
			fmt.Printf("%3d. node %-10d s = %.5f\n", i+1, r.Node, r.Score)
		}
	} else {
		res, err := probesim.TopK(ctx, g, u, *k, opt)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("top-%d from %d (%v):\n", *k, u, elapsed.Round(time.Microsecond))
		for i, r := range res {
			fmt.Printf("%3d. node %-10d s = %.5f\n", i+1, r.Node, r.Score)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probesim-cli:", err)
	os.Exit(1)
}
