// Command probesim-shardd is a shard worker: it loads the graph, builds a
// sharded snapshot store, and serves the shard-engine RPC protocol
// (internal/rpcwire) over TCP for a routing probesim-server.
//
//	probesim-shardd -graph web.txt -shards 16 -index 0 -group 2 -addr :9090
//	probesim-shardd -graph web.txt -shards 16 -index 1 -group 2 -addr :9091
//	probesim-server -workers host0:9090,host1:9091 -addr :8080
//
// A worker started with -index i -group W owns every shard p with
// p % W == i; a fleet with the same -group and distinct indices covers
// the shard space exactly once, and every worker must be started from
// the same graph with the same -shards so the routers' version checks
// agree. The worker serves:
//
//   - shard adjacency blocks (a query's probe frontier faults them in),
//   - √c-walk segments (walks step HERE, with the query's remaining
//     budget propagated in each request — an expired router-side deadline
//     stops the worker-side walk loop at its next poll),
//   - the write plane (edge batches + publication), driven by the router
//     so the fleet stays in lockstep with the serving tier.
//
// With -data-dir the worker's write plane is durable: every identified
// Apply batch from the router is appended to a CRC32C-framed write-ahead
// log (fsynced per -fsync) BEFORE it is applied, the store is
// checkpointed in the background, and on boot the worker recovers the
// newest checkpoint plus the log tail. Batches apply AT MOST ONCE per id
// (the durable watermark), so a router that lost an Apply reply simply
// retries the same batch — the worker that already holds it
// acknowledges without re-applying, which is what closes the lost-reply
// window. A data dir with state wins over -graph; an empty one is
// bootstrapped from it.
//
// With -shard-local (and -group > 1) the worker holds adjacency ONLY for
// its owned shards: bootstrap discards the rest of the loaded graph,
// checkpoints spill and recover just the owned stride, and per-worker
// resident memory shrinks to roughly 1/group of the graph. Version
// counters still advance in lockstep with the fleet (every batch is
// applied and logged in full), so results stay bit-identical to
// full-copy workers. The one contract: scoped fleets must sit behind a
// writer that submits valid batches, because a worker owning neither
// endpoint of a removed edge accepts the remove without checking it.
//
// The last -retain generations stay resolvable so in-flight queries read
// the exact snapshot they pinned while churn publishes newer ones.
//
// Replication: point several workers with the SAME -index/-group at the
// same graph and list them as one comma-separated replica group in the
// router's -workers ("a:9101,b:9101;..."). The router broadcasts writes
// to all of them and fails reads over between them; each replica should
// use its OWN -data-dir.
//
// With -health-addr the worker also serves HTTP /healthz (liveness) and
// /readyz (readiness) on a separate listener: /readyz goes 503 the
// moment a shutdown signal arrives — before the RPC listener closes —
// so orchestrators stop routing first, then the worker exits.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"probesim"
	"probesim/internal/core"
	"probesim/internal/health"
	"probesim/internal/hotidx"
	"probesim/internal/obs"
	"probesim/internal/persist"
	"probesim/internal/qtrace"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

// fatal logs at error level and exits — the slog-era log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		path       = flag.String("graph", "", "edge-list graph file to serve")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		addr       = flag.String("addr", ":9090", "RPC listen address")
		shards     = flag.Int("shards", 16, "partition the graph into up to this many shards (must match every worker and router)")
		index      = flag.Int("index", 0, "this worker's index within the group")
		group      = flag.Int("group", 1, "worker-group size; this worker owns shards p with p%group==index")
		shardLocal = flag.Bool("shard-local", false, "hold adjacency (and checkpoint arrays) only for owned shards: per-worker memory and boot I/O shrink to ~1/group")
		rebuildW   = flag.Int("rebuild-workers", 0, "bound on concurrent shard rebuilds (0 = GOMAXPROCS)")
		eagerSpans = flag.Bool("eager-spans", false, "materialize snapshot span arrays in the background after each publication")
		healthAddr = flag.String("health-addr", "", "serve HTTP /healthz and /readyz on this address (empty = off)")

		dataDir   = flag.String("data-dir", "", "durable state directory: write-ahead log + checkpoints; recovered on boot")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync=interval")
		ckptEvery = flag.Int64("checkpoint-every", 1024, "checkpoint after this many batches beyond the last checkpoint")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")

		hotSources = flag.Int("hot-sources", 0, "warm-standby hot-source tier: precompute single-source results for up to this many popular sources, fed by the walks routed here (0 = off; requires a full-copy worker)")
		hotBudget  = flag.Duration("hot-refresh-budget", 200*time.Millisecond, "per-entry time budget for background hot-source builds")

		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and /debug/queries on this address (empty = off)")
		traceSlow   = flag.Duration("trace-slow", 0, "log every request slower than this as a structured slow_query record (0 = off)")
		traceSample = flag.Float64("trace-sample", 0, "probability an untraced request records a local span trace; router-traced requests always record")
	)
	flag.Parse()
	if err := obs.InitLogging(*logFormat); err != nil {
		fmt.Fprintf(os.Stderr, "probesim-shardd: %v\n", err)
		os.Exit(1)
	}
	if *path == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "probesim-shardd: missing -graph (or a recoverable -data-dir)")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "probesim-shardd: -shards must be >= 1")
		os.Exit(1)
	}
	if *group < 1 || *index < 0 || *index >= *group {
		fmt.Fprintln(os.Stderr, "probesim-shardd: need 0 <= index < group")
		os.Exit(1)
	}
	// The scoped store only makes sense with a real group; under group 1
	// it would just be the full store with extra bookkeeping.
	scopeIndex, scopeGroup := 0, 0
	if *shardLocal && *group > 1 {
		scopeIndex, scopeGroup = *index, *group
	}
	loadGraph := func() (*probesim.Graph, error) {
		if *path == "" {
			return nil, fmt.Errorf("probesim-shardd: -data-dir %s holds no recoverable state and no -graph was given to bootstrap it", *dataDir)
		}
		f, err := os.Open(*path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if *binary {
			return probesim.ReadBinaryGraph(f)
		}
		return probesim.LoadEdgeList(f, *undirected)
	}
	var st *shard.Store
	var lg *wal.Log
	var ck *persist.Checkpointer
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal("parsing -fsync", "err", err)
		}
		var rstats persist.RecoveryStats
		st, lg, rstats, err = persist.OpenStoreScoped(*dataDir, *shards, *rebuildW, scopeIndex, scopeGroup,
			wal.Options{Sync: policy, SyncEvery: *fsyncIvl, SegmentBytes: *segBytes}, loadGraph)
		if err != nil {
			fatal("opening data dir", "dir", *dataDir, "err", err)
		}
		if rstats.Bootstrapped {
			slog.Info("bootstrapped data dir (initial checkpoint written)", "dir", *dataDir, "graph", *path)
		} else {
			slog.Info("recovered data dir",
				"dir", *dataDir, "checkpoint_through", rstats.CheckpointThrough,
				"replayed", rstats.Replayed, "skipped", rstats.ReplaySkipped,
				"torn_bytes", rstats.TornBytes, "watermark", rstats.LastBatch)
		}
		ck = persist.StartCheckpointer(st, lg, *ckptEvery, time.Second)
	} else {
		g, err := loadGraph()
		if err != nil {
			fatal("loading graph", "err", err)
		}
		if scopeGroup > 1 {
			st = shard.NewStoreScoped(g, *shards, *rebuildW, scopeIndex, scopeGroup)
		} else {
			st = shard.NewStore(g, *shards, *rebuildW)
		}
	}
	// Bootstrap churns through a full graph load (and, scoped, discards
	// most of it); hand that garbage back to the OS now so the worker's
	// resident set reflects what it actually serves.
	debug.FreeOSMemory()
	if *eagerSpans {
		st.EnableEagerSpans()
	}
	eng := router.NewLocalEngine(st, *index, *group)
	if lg != nil {
		eng.SetWAL(lg)
	}
	// Warm-standby hot-source tier: a full-copy worker holds the whole
	// graph, so it can precompute entries for the sources whose walks the
	// router keeps sending it (walk entry nodes approximate source
	// popularity shard-locally) and keep them fresh from its own
	// applied-batch stream. The entries are served at /debug/hotsources
	// for inspection and are ready the moment this worker is promoted to
	// serve queries directly; the RPC read path itself is unchanged.
	// Entries are built with default kernel options — a promotion that
	// serves different options must rebuild.
	var tier *hotidx.Tier
	if *hotSources > 0 {
		if scopeGroup > 1 {
			slog.Warn("-hot-sources requires a full-copy worker (a -shard-local store cannot run whole-graph builds); disabled")
		} else {
			hex := core.NewExecutorOn(st, core.Options{})
			tier = hotidx.New(hex, st.Partition().Shift(), hotidx.Config{
				MaxEntries:    *hotSources,
				RefreshBudget: core.Budget{Timeout: *hotBudget},
			})
			defer tier.Close()
			st.SubscribeApplied(tier.OnBatch)
			if lg != nil {
				lg.Subscribe(func(id uint64, ops []wal.Op) { tier.ObserveAppend(id) })
			}
			eng.SetWalkObserver(tier.Touch)
			slog.Info("hot-source standby tier armed", "max_entries", *hotSources, "refresh_budget", *hotBudget)
		}
	}
	srv, ln, err := router.ListenAndServe(*addr, eng)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	// The worker tracer is always armed: router-traced requests record
	// spans regardless (they ride the reply back), and this adds the
	// worker's own slow-request log, local sampling and /debug/queries.
	tracer := qtrace.NewTracer(*traceSlow, *traceSample, 0, nil)
	srv.SetTracer(tracer)
	if *debugAddr != "" {
		handlers := map[string]http.Handler{
			"/debug/queries": obs.QueriesHandler(tracer),
			"/metrics":       obs.MetricsHandler("probesim-shardd"),
		}
		if tier != nil {
			handlers["/debug/hotsources"] = tier.Handler()
		}
		dln, err := obs.ListenDebug(*debugAddr, handlers)
		if err != nil {
			fatal("debug listener", "addr", *debugAddr, "err", err)
		}
		slog.Info("pprof", "addr", dln.Addr().String())
		defer dln.Close()
	}
	var hstate health.State
	if *healthAddr != "" {
		mux := http.NewServeMux()
		hstate.Register(mux)
		// Scrapers usually reach workers through the probe port, so the
		// build-info exposition rides here too (and on -debug-addr).
		mux.Handle("/metrics", obs.MetricsHandler("probesim-shardd"))
		hln, err := net.Listen("tcp", *healthAddr)
		if err != nil {
			fatal("health listener", "addr", *healthAddr, "err", err)
		}
		go func() {
			if err := http.Serve(hln, mux); err != nil {
				slog.Warn("health listener stopped", "err", err)
			}
		}()
		hstate.SetReady(true)
		slog.Info("probes", "addr", hln.Addr().String())
	}
	owned := 0
	for p := *index; p < st.NumShards(); p += *group {
		owned++
	}
	slog.Info("serving",
		"nodes", st.NumNodes(), "edges", st.NumEdges(), "addr", ln.Addr().String(),
		"worker", *index, "group", *group, "owned", owned, "shards", st.NumShards(),
		"stride", st.Partition().Stride(), "durable", lg != nil, "shard_local", scopeGroup > 1)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Readiness drops before the RPC listener closes, so anything
	// watching /readyz stops routing to this replica first.
	hstate.SetDraining()
	slog.Info("signal received, closing")
	if err := srv.Close(); err != nil {
		slog.Error("close", "err", err)
	}
	if ck != nil {
		if err := ck.Stop(); err != nil {
			slog.Error("final checkpoint", "err", err)
		}
	}
	if lg != nil {
		if err := lg.Close(); err != nil {
			slog.Error("closing wal", "err", err)
		}
	}
	slog.Info("bye", "segments_budget_stopped", eng.SegmentsStopped())
}
