// Command probesim-shardd is a shard worker: it loads the graph, builds a
// sharded snapshot store, and serves the shard-engine RPC protocol
// (internal/rpcwire) over TCP for a routing probesim-server.
//
//	probesim-shardd -graph web.txt -shards 16 -index 0 -group 2 -addr :9090
//	probesim-shardd -graph web.txt -shards 16 -index 1 -group 2 -addr :9091
//	probesim-server -workers host0:9090,host1:9091 -addr :8080
//
// A worker started with -index i -group W owns every shard p with
// p % W == i; a fleet with the same -group and distinct indices covers
// the shard space exactly once, and every worker must be started from
// the same graph with the same -shards so the routers' version checks
// agree. The worker serves:
//
//   - shard adjacency blocks (a query's probe frontier faults them in),
//   - √c-walk segments (walks step HERE, with the query's remaining
//     budget propagated in each request — an expired router-side deadline
//     stops the worker-side walk loop at its next poll),
//   - the write plane (edge batches + publication), driven by the router
//     so the fleet stays in lockstep with the serving tier.
//
// With -data-dir the worker's write plane is durable: every identified
// Apply batch from the router is appended to a CRC32C-framed write-ahead
// log (fsynced per -fsync) BEFORE it is applied, the store is
// checkpointed in the background, and on boot the worker recovers the
// newest checkpoint plus the log tail. Batches apply AT MOST ONCE per id
// (the durable watermark), so a router that lost an Apply reply simply
// retries the same batch — the worker that already holds it
// acknowledges without re-applying, which is what closes the lost-reply
// window. A data dir with state wins over -graph; an empty one is
// bootstrapped from it.
//
// The last -retain generations stay resolvable so in-flight queries read
// the exact snapshot they pinned while churn publishes newer ones.
//
// Replication: point several workers with the SAME -index/-group at the
// same graph and list them as one comma-separated replica group in the
// router's -workers ("a:9101,b:9101;..."). The router broadcasts writes
// to all of them and fails reads over between them; each replica should
// use its OWN -data-dir.
//
// With -health-addr the worker also serves HTTP /healthz (liveness) and
// /readyz (readiness) on a separate listener: /readyz goes 503 the
// moment a shutdown signal arrives — before the RPC listener closes —
// so orchestrators stop routing first, then the worker exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probesim"
	"probesim/internal/health"
	"probesim/internal/persist"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

func main() {
	var (
		path       = flag.String("graph", "", "edge-list graph file to serve")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		addr       = flag.String("addr", ":9090", "RPC listen address")
		shards     = flag.Int("shards", 16, "partition the graph into up to this many shards (must match every worker and router)")
		index      = flag.Int("index", 0, "this worker's index within the group")
		group      = flag.Int("group", 1, "worker-group size; this worker owns shards p with p%group==index")
		rebuildW   = flag.Int("rebuild-workers", 0, "bound on concurrent shard rebuilds (0 = GOMAXPROCS)")
		eagerSpans = flag.Bool("eager-spans", false, "materialize snapshot span arrays in the background after each publication")
		healthAddr = flag.String("health-addr", "", "serve HTTP /healthz and /readyz on this address (empty = off)")

		dataDir   = flag.String("data-dir", "", "durable state directory: write-ahead log + checkpoints; recovered on boot")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync=interval")
		ckptEvery = flag.Int64("checkpoint-every", 1024, "checkpoint after this many batches beyond the last checkpoint")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")
	)
	flag.Parse()
	if *path == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "probesim-shardd: missing -graph (or a recoverable -data-dir)")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "probesim-shardd: -shards must be >= 1")
		os.Exit(1)
	}
	if *group < 1 || *index < 0 || *index >= *group {
		fmt.Fprintln(os.Stderr, "probesim-shardd: need 0 <= index < group")
		os.Exit(1)
	}
	loadGraph := func() (*probesim.Graph, error) {
		if *path == "" {
			return nil, fmt.Errorf("probesim-shardd: -data-dir %s holds no recoverable state and no -graph was given to bootstrap it", *dataDir)
		}
		f, err := os.Open(*path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if *binary {
			return probesim.ReadBinaryGraph(f)
		}
		return probesim.LoadEdgeList(f, *undirected)
	}
	var st *shard.Store
	var lg *wal.Log
	var ck *persist.Checkpointer
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		var rstats persist.RecoveryStats
		st, lg, rstats, err = persist.OpenStore(*dataDir, *shards, *rebuildW,
			wal.Options{Sync: policy, SyncEvery: *fsyncIvl, SegmentBytes: *segBytes}, loadGraph)
		if err != nil {
			log.Fatalf("probesim-shardd: opening %s: %v", *dataDir, err)
		}
		if rstats.Bootstrapped {
			log.Printf("probesim-shardd: bootstrapped %s from %s (initial checkpoint written)", *dataDir, *path)
		} else {
			log.Printf("probesim-shardd: recovered %s: checkpoint through batch %d, replayed %d log batches (%d skipped, %d torn bytes dropped), watermark %d",
				*dataDir, rstats.CheckpointThrough, rstats.Replayed, rstats.ReplaySkipped, rstats.TornBytes, rstats.LastBatch)
		}
		ck = persist.StartCheckpointer(st, lg, *ckptEvery, time.Second)
	} else {
		g, err := loadGraph()
		if err != nil {
			log.Fatal(err)
		}
		st = shard.NewStore(g, *shards, *rebuildW)
	}
	if *eagerSpans {
		st.EnableEagerSpans()
	}
	eng := router.NewLocalEngine(st, *index, *group)
	if lg != nil {
		eng.SetWAL(lg)
	}
	srv, ln, err := router.ListenAndServe(*addr, eng)
	if err != nil {
		log.Fatal(err)
	}
	var hstate health.State
	if *healthAddr != "" {
		mux := http.NewServeMux()
		hstate.Register(mux)
		hln, err := net.Listen("tcp", *healthAddr)
		if err != nil {
			log.Fatalf("probesim-shardd: health listener: %v", err)
		}
		go func() {
			if err := http.Serve(hln, mux); err != nil {
				log.Printf("probesim-shardd: health listener: %v", err)
			}
		}()
		hstate.SetReady(true)
		log.Printf("probesim-shardd: probes on http://%s/healthz /readyz", hln.Addr())
	}
	owned := 0
	for p := *index; p < st.NumShards(); p += *group {
		owned++
	}
	durable := ""
	if lg != nil {
		durable = fmt.Sprintf(", durable in %s", *dataDir)
	}
	log.Printf("probesim-shardd: serving n=%d m=%d on %s (worker %d/%d, %d of %d shards, stride %d%s)",
		st.NumNodes(), st.NumEdges(), ln.Addr(), *index, *group, owned, st.NumShards(), st.Partition().Stride(), durable)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Readiness drops before the RPC listener closes, so anything
	// watching /readyz stops routing to this replica first.
	hstate.SetDraining()
	log.Printf("probesim-shardd: signal received, closing")
	if err := srv.Close(); err != nil {
		log.Printf("probesim-shardd: close: %v", err)
	}
	if ck != nil {
		if err := ck.Stop(); err != nil {
			log.Printf("probesim-shardd: final checkpoint: %v", err)
		}
	}
	if lg != nil {
		if err := lg.Close(); err != nil {
			log.Printf("probesim-shardd: closing wal: %v", err)
		}
	}
	log.Printf("probesim-shardd: bye (%d walk segments budget-stopped)", eng.SegmentsStopped())
}
