// Command probesim-shardd is a shard worker: it loads the graph, builds a
// sharded snapshot store, and serves the shard-engine RPC protocol
// (internal/rpcwire) over TCP for a routing probesim-server.
//
//	probesim-shardd -graph web.txt -shards 16 -index 0 -group 2 -addr :9090
//	probesim-shardd -graph web.txt -shards 16 -index 1 -group 2 -addr :9091
//	probesim-server -workers host0:9090,host1:9091 -addr :8080
//
// A worker started with -index i -group W owns every shard p with
// p % W == i; a fleet with the same -group and distinct indices covers
// the shard space exactly once, and every worker must be started from
// the same graph with the same -shards so the routers' version checks
// agree. The worker serves:
//
//   - shard adjacency blocks (a query's probe frontier faults them in),
//   - √c-walk segments (walks step HERE, with the query's remaining
//     budget propagated in each request — an expired router-side deadline
//     stops the worker-side walk loop at its next poll),
//   - the write plane (edge batches + publication), driven by the router
//     so the fleet stays in lockstep with the serving tier.
//
// The last -retain generations stay resolvable so in-flight queries read
// the exact snapshot they pinned while churn publishes newer ones.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"probesim"
	"probesim/internal/router"
	"probesim/internal/shard"
)

func main() {
	var (
		path       = flag.String("graph", "", "edge-list graph file to serve")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		addr       = flag.String("addr", ":9090", "RPC listen address")
		shards     = flag.Int("shards", 16, "partition the graph into up to this many shards (must match every worker and router)")
		index      = flag.Int("index", 0, "this worker's index within the group")
		group      = flag.Int("group", 1, "worker-group size; this worker owns shards p with p%group==index")
		rebuildW   = flag.Int("rebuild-workers", 0, "bound on concurrent shard rebuilds (0 = GOMAXPROCS)")
		eagerSpans = flag.Bool("eager-spans", false, "materialize snapshot span arrays in the background after each publication")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "probesim-shardd: missing -graph")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "probesim-shardd: -shards must be >= 1")
		os.Exit(1)
	}
	if *group < 1 || *index < 0 || *index >= *group {
		fmt.Fprintln(os.Stderr, "probesim-shardd: need 0 <= index < group")
		os.Exit(1)
	}
	f, err := os.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	var g *probesim.Graph
	if *binary {
		g, err = probesim.ReadBinaryGraph(f)
	} else {
		g, err = probesim.LoadEdgeList(f, *undirected)
	}
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	st := shard.NewStore(g, *shards, *rebuildW)
	if *eagerSpans {
		st.EnableEagerSpans()
	}
	eng := router.NewLocalEngine(st, *index, *group)
	srv, ln, err := router.ListenAndServe(*addr, eng)
	if err != nil {
		log.Fatal(err)
	}
	owned := 0
	for p := *index; p < st.NumShards(); p += *group {
		owned++
	}
	log.Printf("probesim-shardd: serving n=%d m=%d on %s (worker %d/%d, %d of %d shards, stride %d)",
		g.NumNodes(), g.NumEdges(), ln.Addr(), *index, *group, owned, st.NumShards(), st.Partition().Stride())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("probesim-shardd: signal received, closing")
	if err := srv.Close(); err != nil {
		log.Printf("probesim-shardd: close: %v", err)
	}
	log.Printf("probesim-shardd: bye (%d walk segments budget-stopped)", eng.SegmentsStopped())
}
