// Command probesim-server exposes SimRank similarity search over HTTP: a
// small, production-shaped service wrapping the library with the
// version-keyed result cache, demonstrating how a downstream system would
// deploy index-free SimRank behind an API with live graph updates.
//
//	probesim-server -graph web.txt -addr :8080
//
//	GET  /topk?u=42&k=10          -> {"query":42,"results":[{"node":7,"score":0.31},...]}
//	GET  /single-source?u=42      -> {"query":42,"nonzero":1234,"scores":{"7":0.31,...}}  (top -limit entries)
//	POST /edges?u=1&v=2           -> add edge 1->2 (invalidates cached answers)
//	DELETE /edges?u=1&v=2         -> remove edge 1->2
//	GET  /stats                   -> graph, cache and shard-publication statistics
//
// Queries run lock-free against the published immutable snapshot; updates
// serialize on a write mutex and republish.
//
// With -shards=P the graph is partitioned by source node into up to P
// shards, each with its own CSR snapshot: an edge update republishes only
// the shards it touched (O(batch + touched shards) instead of O(n+m)),
// which is the configuration for high-churn dynamic workloads. -shards=0
// (the default) keeps the monolithic snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"probesim"
	"probesim/internal/server"
	"probesim/internal/shard"
)

func main() {
	var (
		path       = flag.String("graph", "", "edge-list graph file to serve")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		addr       = flag.String("addr", ":8080", "listen address")
		epsA       = flag.Float64("epsa", 0.1, "absolute error bound eps_a")
		delta      = flag.Float64("delta", 0.01, "failure probability")
		c          = flag.Float64("c", 0.6, "SimRank decay factor")
		seed       = flag.Uint64("seed", 1, "random seed")
		cacheCap   = flag.Int("cache", 64, "cached single-source vectors")
		limit      = flag.Int("limit", 100, "max entries returned by /single-source")
		shards     = flag.Int("shards", 0, "partition the graph into up to this many shards (0 = monolithic snapshot)")
		rebuildW   = flag.Int("rebuild-workers", 0, "bound on concurrent shard rebuilds (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "probesim-server: missing -graph")
		os.Exit(1)
	}
	f, err := os.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	var g *probesim.Graph
	if *binary {
		g, err = probesim.ReadBinaryGraph(f)
	} else {
		g, err = probesim.LoadEdgeList(f, *undirected)
	}
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	opt := probesim.Options{C: *c, EpsA: *epsA, Delta: *delta, Seed: *seed}
	var srv *server.Server
	if *shards > 0 {
		st := shard.NewStore(g, *shards, *rebuildW)
		srv = server.NewSharded(st, opt, *cacheCap, *limit)
		log.Printf("probesim-server: serving n=%d m=%d on %s (%d shards, stride %d)",
			g.NumNodes(), g.NumEdges(), *addr, st.NumShards(), st.Partition().Stride())
	} else {
		srv = server.New(g, opt, *cacheCap, *limit)
		log.Printf("probesim-server: serving n=%d m=%d on %s (monolithic snapshot)",
			g.NumNodes(), g.NumEdges(), *addr)
	}
	log.Fatal(http.ListenAndServe(*addr, srv))
}
