// Command probesim-server exposes SimRank similarity search over HTTP: a
// small, production-shaped service wrapping the library with the
// version-keyed result cache, demonstrating how a downstream system would
// deploy index-free SimRank behind an API with live graph updates.
//
//	probesim-server -graph web.txt -addr :8080
//
//	GET  /topk?u=42&k=10          -> {"query":42,"results":[{"node":7,"score":0.31},...]}
//	GET  /single-source?u=42      -> {"query":42,"nonzero":1234,"scores":{"7":0.31,...}}  (top -limit entries)
//	POST /edges?u=1&v=2           -> add edge 1->2 (invalidates cached answers)
//	DELETE /edges?u=1&v=2         -> remove edge 1->2
//	GET  /stats                   -> graph, cache and shard-publication statistics
//	GET  /metrics                 -> Prometheus text: per-route latency histograms,
//	                                 in-flight gauges, timeout/rejection counters
//
// Queries run lock-free against the published immutable snapshot; updates
// serialize on a write mutex and republish.
//
// # Operational limits
//
// Every query route runs under -query-timeout (surfaced as HTTP 504 with
// Retry-After when it expires — the kernels stop at their next budget
// checkpoint, so an expired deadline never keeps burning CPU). At most
// -max-inflight similarity queries execute concurrently; excess requests
// are rejected immediately with 503 + Retry-After. Writers queue on the
// mutation mutex at most -max-write-queue deep; beyond that edge batches
// get 503 backpressure instead of piling onto the lock. -max-walks and
// -max-probe-work cap each query's work directly (503 when exhausted).
//
// With -shards=P the graph is partitioned by source node into up to P
// shards, each with its own CSR snapshot: an edge update republishes only
// the shards it touched (O(batch + touched shards) instead of O(n+m)),
// which is the configuration for high-churn dynamic workloads. -shards=0
// (the default) keeps the monolithic snapshot. -eager-spans additionally
// materializes each new snapshot's dense span arrays on a background
// goroutine right after publication, so the first query after a batch
// never pays the densification.
//
// With -workers the graph is not loaded here at all: the server routes
// every query to a fleet of probesim-shardd workers over the binary
// shard RPC (internal/rpcwire), fanning the walk/probe frontier out to
// shard owners and merging the results — bit-identically to the
// single-process answer for the same seed. The grammar is replica
// groups: semicolons separate shard owners, commas separate replicas of
// one owner, so "a:9101,b:9101;c:9101,d:9101" is two shard groups of
// two replicas each (and "a:9101;b:9101" is the old unreplicated
// two-owner fleet — note commas CHANGED meaning from owners to
// replicas). Writes broadcast to every current replica under identified
// apply-once batches; reads fail over to a group peer on transport
// errors and, with -hedge, race a second replica after a p99-derived
// delay (first answer wins, the loser is canceled — bit-identity is
// unaffected because the walk RNG state travels in the RPC). A replica
// that misses writes is demoted, replayed from the in-memory batch ring
// by the health pass, and re-admitted; only a whole group dying
// surfaces as HTTP 502. Per-replica health/version/currency and
// failover/hedge counters appear on /stats and /metrics.
//
// With -soft-inflight=N (< -max-inflight), admission pressure degrades
// instead of rejecting: queries above the watermark run with
// -degrade-factor× wider εa (a quadratically smaller walk budget), carry
// an X-ProbeSim-Degraded header naming the εa they actually got, and
// bypass the result cache. Only above -max-inflight does the server 503.
//
// # Tenancy and SLOs
//
// With -tenants="search=latency-strict,crawl=throughput-batch" requests
// carry their tenant in the X-ProbeSim-Tenant header (absent = the
// "default" tenant) and query admission becomes deficit-weighted fair
// queueing: each tenant gets a bounded wait queue and a class-derived
// weight, and a request 503s only when its OWN tenant's queue is full —
// a batch tenant saturating the server no longer starves an interactive
// one. Class policy also governs degradation (latency-strict tenants
// always get full-accuracy answers) and per-tenant budget caps. Clients
// can pin an accuracy floor with X-ProbeSim-Max-Epsa: the server
// answers 503 instead of silently serving a wider εa than the header
// allows. -slo / -slo-default attach per-tenant p99+availability
// objectives measured over -slo-window; the windowed state (including
// error-budget burn rates) is served on /debug/slo and exported as
// tenant-labeled probesim_slo_* and probesim_tenant_* families on
// /metrics.
//
// # Durability
//
// With -data-dir the write plane is durable: every acknowledged edge
// batch is appended to a CRC32C-framed write-ahead log (fsynced per
// -fsync) BEFORE it is applied, the store is checkpointed in the
// background every -checkpoint-every batches (truncating covered log
// segments), and on boot the server recovers the newest checkpoint plus
// the log tail — an acknowledged write survives kill -9. A data dir that
// already holds state wins over -graph (the graph file is only the
// bootstrap seed for an empty dir). Durability requires the sharded
// backend; -shards defaults to 16 when -data-dir is set without it. In
// routed mode (-workers) durability belongs on the workers
// (probesim-shardd -data-dir), not here.
//
// # Probes
//
// /healthz answers 200 for the process lifetime (liveness: restarting
// would not help). /readyz answers 200 only while the server is ready
// and not draining; on SIGINT/SIGTERM it flips to 503 BEFORE the
// listener closes, so load balancers drain the instance first.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain-timeout; queries that outlive the
// drain are canceled through the same context seam and unwind with a
// 499 "request canceled" response (the connection is being torn down —
// the status exists for logs and metrics). With -data-dir the shutdown
// path also takes a final checkpoint and closes the log cleanly, so the
// next boot replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probesim"
	"probesim/internal/obs"
	"probesim/internal/persist"
	"probesim/internal/qtrace"
	"probesim/internal/router"
	"probesim/internal/server"
	"probesim/internal/shard"
	"probesim/internal/slo"
	"probesim/internal/tenant"
	"probesim/internal/wal"
)

// fatal logs at error level and exits — the slog-era log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// tenantPlane builds the tenant registry and SLO tracker from the flag
// surface. -tenants arms multi-tenancy (and with it fair-queued
// admission); -slo or a -tenants registry arms SLO tracking, so a
// single-tenant deployment can still watch its default tenant's burn
// rate by setting -slo alone. Both come back nil when neither flag is
// set — the pre-tenant server behavior, exactly.
func tenantPlane(tenantSpec, tenantClass, sloSpec, sloDefault string, sloWindow time.Duration) (*tenant.Registry, *slo.Tracker) {
	var reg *tenant.Registry
	if tenantSpec != "" {
		defClass, err := tenant.ParseClass(tenantClass)
		if err != nil {
			fatal("parsing -tenant-default-class", "err", err)
		}
		reg = tenant.NewRegistry(defClass, nil)
		if err := tenant.ParseSpec(reg, tenantSpec); err != nil {
			fatal("parsing -tenants", "err", err)
		}
		names := make([]string, 0, len(reg.All()))
		for _, t := range reg.All() {
			names = append(names, t.Name+"="+t.Class.String())
		}
		slog.Info("tenant plane armed", "tenants", names, "default_class", defClass.String())
	}
	if sloSpec == "" && reg == nil {
		return reg, nil
	}
	def, err := slo.ParseObjective(sloDefault)
	if err != nil {
		fatal("parsing -slo-default", "err", err)
	}
	perTenant, err := slo.ParseObjectives(sloSpec)
	if err != nil {
		fatal("parsing -slo", "err", err)
	}
	slotr := slo.New(slo.Config{Window: sloWindow, Default: def, PerTenant: perTenant})
	slog.Info("slo tracking armed", "window", sloWindow, "default_objective", sloDefault, "objectives", len(perTenant))
	return reg, slotr
}

func main() {
	var (
		path       = flag.String("graph", "", "edge-list graph file to serve")
		binary     = flag.Bool("binary", false, "graph file is in binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		addr       = flag.String("addr", ":8080", "listen address")
		epsA       = flag.Float64("epsa", 0.1, "absolute error bound eps_a")
		delta      = flag.Float64("delta", 0.01, "failure probability")
		c          = flag.Float64("c", 0.6, "SimRank decay factor")
		seed       = flag.Uint64("seed", 1, "random seed")
		cacheCap   = flag.Int("cache", 64, "cached single-source vectors")
		limit      = flag.Int("limit", 100, "max entries returned by /single-source")
		hotSources = flag.Int("hot-sources", 0, "precompute single-source results for up to this many hot sources, kept fresh by the applied-batch stream (0 = off; requires the sharded backend)")
		hotBudget  = flag.Duration("hot-refresh-budget", 200*time.Millisecond, "per-entry time budget for background hot-source builds")
		shards     = flag.Int("shards", 0, "partition the graph into up to this many shards (0 = monolithic snapshot)")
		rebuildW   = flag.Int("rebuild-workers", 0, "bound on concurrent shard rebuilds (0 = GOMAXPROCS)")
		workers    = flag.String("workers", "", "probesim-shardd replica groups (semicolons separate shard owners, commas separate replicas: \"a,b;c,d\"); route queries to these workers instead of serving the graph in-process")
		healthIvl  = flag.Duration("health-interval", 5*time.Second, "with -workers: background per-replica health/version probe + catch-up interval")
		hedge      = flag.Bool("hedge", true, "with replicated -workers groups: race a second replica when a read exceeds the group's p99-derived delay")
		hedgeMin   = flag.Duration("hedge-min", 2*time.Millisecond, "lower clamp on the hedge delay")
		hedgeMax   = flag.Duration("hedge-max", 200*time.Millisecond, "upper clamp on the hedge delay (also the cold-start delay)")

		dataDir   = flag.String("data-dir", "", "durable state directory: write-ahead log + checkpoints; recovered on boot (requires the sharded backend)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always (every acknowledged batch is on disk), interval, or off")
		fsyncIvl  = flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync=interval")
		ckptEvery = flag.Int64("checkpoint-every", 1024, "checkpoint after this many batches beyond the last checkpoint")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "per-query deadline (0 = none); expiry returns HTTP 504")
		maxInflight  = flag.Int("max-inflight", 64, "concurrent similarity queries before 503 rejection (0 = unlimited)")
		softInflight = flag.Int("soft-inflight", 0, "degrade watermark: above this many in-flight queries (and below -max-inflight), serve wider-epsa answers with an X-ProbeSim-Degraded header instead of rejecting (0 = off)")
		degradeF     = flag.Float64("degrade-factor", 2, "epsa multiplier for degraded queries")
		maxJoins     = flag.Int("max-join-inflight", 1, "concurrent /join/topk + /components scans")
		maxWriteQ    = flag.Int("max-write-queue", 64, "writers queued on the mutation lock before 503 backpressure (0 = unlimited)")
		maxWalks     = flag.Int64("max-walks", 0, "per-query cap on √c-walk trials (0 = the plan's derived count)")
		maxWork      = flag.Int64("max-probe-work", 0, "per-query cap on probe edge traversals (0 = uncapped)")
		eagerSpans   = flag.Bool("eager-spans", false, "with -shards: materialize snapshot span arrays in the background after each publication")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window for in-flight requests")

		tenantSpec  = flag.String("tenants", "", "arm multi-tenant admission: \"name=class,...\" with classes latency-strict, throughput-batch, degrade-tolerant; requests name their tenant in the X-ProbeSim-Tenant header, queries fair-queue per tenant instead of 503ing at -max-inflight (empty = single-tenant behavior)")
		tenantClass = flag.String("tenant-default-class", "degrade-tolerant", "with -tenants: class of the default tenant and of names not listed in -tenants")
		sloSpec     = flag.String("slo", "", "per-tenant SLO objectives \"name=p99:availability,...\" (e.g. \"search=50ms:0.999,crawl=2s:0.99\"); arms /debug/slo and the probesim_slo_* metric families")
		sloDefault  = flag.String("slo-default", "1s:0.99", "objective for tenants without an explicit -slo entry")
		sloWindow   = flag.Duration("slo-window", time.Minute, "rolling measurement window for SLO state and burn rates")

		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off; bypasses admission control)")
		traceSlow   = flag.Duration("trace-slow", 0, "log every query slower than this as a structured slow_query record (0 = off)")
		traceSample = flag.Float64("trace-sample", 0, "probability an ordinary query records a full span trace; ?trace=1 always does")
	)
	flag.Parse()
	if err := obs.InitLogging(*logFormat); err != nil {
		fmt.Fprintf(os.Stderr, "probesim-server: %v\n", err)
		os.Exit(1)
	}
	if *path == "" && *workers == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "probesim-server: missing -graph (or -workers, or a recoverable -data-dir)")
		os.Exit(1)
	}
	reg, slotr := tenantPlane(*tenantSpec, *tenantClass, *sloSpec, *sloDefault, *sloWindow)
	opt := probesim.Options{
		C: *c, EpsA: *epsA, Delta: *delta, Seed: *seed,
		Budget: probesim.Budget{MaxWalks: *maxWalks, MaxProbeWork: *maxWork},
	}
	var srv *server.Server
	if *workers != "" {
		// Routed topology: the graph lives on the probesim-shardd workers;
		// this process only routes, merges and caches. -graph is ignored.
		if *dataDir != "" {
			fatal("-data-dir belongs on the workers in routed mode (probesim-shardd -data-dir); the routing tier keeps no durable state")
		}
		specs, err := router.ParseGroups(*workers)
		if err != nil {
			fatal("parsing -workers", "err", err)
		}
		groups := make([][]router.ShardEngine, len(specs))
		nworkers, replicated := 0, false
		for gi, members := range specs {
			for _, a := range members {
				groups[gi] = append(groups[gi], router.NewRemoteEngine(a))
				nworkers++
			}
			if len(members) > 1 {
				replicated = true
			}
		}
		rt, err := router.NewReplicated(groups)
		if err != nil {
			fatal("assembling worker topology", "err", err)
		}
		if *hotSources > 0 {
			// The tier's dependency filter subscribes to an in-process
			// shard.Store's applied-batch stream; a pure routing tier has
			// none. Workers can run their own warm-standby tier instead
			// (probesim-shardd -hot-sources).
			slog.Warn("-hot-sources requires an in-process shard store; disabled in routed mode")
		}
		if *hedge && replicated {
			rt.SetHedge(router.HedgePolicy{Enabled: true, MinDelay: *hedgeMin, MaxDelay: *hedgeMax})
		}
		stopHealth := rt.StartHealth(*healthIvl)
		defer stopHealth()
		srv = server.NewRouted(rt, opt, *cacheCap, *limit)
		snap := rt.PublishedView()
		slog.Info("routing",
			"nodes", snap.NumNodes(), "edges", snap.NumEdges(), "version", snap.Version(),
			"addr", *addr, "groups", len(groups), "workers", nworkers,
			"hedge", *hedge && replicated, "topology", *workers)
		serve(srv, addr, queryTimeout, maxInflight, softInflight, degradeF, maxJoins, maxWriteQ, drainTO, traceSlow, traceSample, debugAddr, reg, slotr, nil)
		return
	}
	loadGraph := func() (*probesim.Graph, error) {
		if *path == "" {
			return nil, fmt.Errorf("probesim-server: -data-dir %s holds no recoverable state and no -graph was given to bootstrap it", *dataDir)
		}
		f, err := os.Open(*path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if *binary {
			return probesim.ReadBinaryGraph(f)
		}
		return probesim.LoadEdgeList(f, *undirected)
	}
	if *dataDir != "" {
		// Durable sharded backend: recover (or bootstrap) the store from
		// the data dir, arm the write-ahead log, checkpoint in the
		// background. An acknowledged /edges or /edges/batch is on disk
		// before its 200.
		if *shards <= 0 {
			*shards = 16
			slog.Info("-data-dir requires the sharded backend; defaulting shards", "shards", *shards)
		}
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal("parsing -fsync", "err", err)
		}
		st, lg, rstats, err := persist.OpenStore(*dataDir, *shards, *rebuildW,
			wal.Options{Sync: policy, SyncEvery: *fsyncIvl, SegmentBytes: *segBytes}, loadGraph)
		if err != nil {
			fatal("opening data dir", "dir", *dataDir, "err", err)
		}
		if rstats.Bootstrapped {
			slog.Info("bootstrapped data dir (initial checkpoint written)", "dir", *dataDir, "graph", *path)
		} else {
			slog.Info("recovered data dir",
				"dir", *dataDir, "checkpoint_through", rstats.CheckpointThrough,
				"replayed", rstats.Replayed, "skipped", rstats.ReplaySkipped,
				"torn_bytes", rstats.TornBytes, "watermark", rstats.LastBatch)
		}
		if *eagerSpans {
			st.EnableEagerSpans()
		}
		ck := persist.StartCheckpointer(st, lg, *ckptEvery, time.Second)
		srv = server.NewSharded(st, opt, *cacheCap, *limit)
		srv.SetWAL(lg)
		if *hotSources > 0 {
			// After SetWAL so the tier also observes the append-side
			// watermark (probesim_hot_wal_watermark).
			tier := srv.EnableHotTier(*hotSources, *hotBudget)
			defer tier.Close()
			slog.Info("hot-source tier armed", "max_entries", *hotSources, "refresh_budget", *hotBudget)
		}
		slog.Info("serving",
			"nodes", st.NumNodes(), "edges", st.NumEdges(), "addr", *addr,
			"shards", st.NumShards(), "fsync", policy.String(), "checkpoint_every", *ckptEvery)
		serve(srv, addr, queryTimeout, maxInflight, softInflight, degradeF, maxJoins, maxWriteQ, drainTO, traceSlow, traceSample, debugAddr, reg, slotr, func() {
			if err := ck.Stop(); err != nil {
				slog.Error("final checkpoint", "err", err)
			}
			if err := lg.Close(); err != nil {
				slog.Error("closing wal", "err", err)
			}
		})
		return
	}
	g, err := loadGraph()
	if err != nil {
		fatal("loading graph", "err", err)
	}
	if *shards > 0 {
		st := shard.NewStore(g, *shards, *rebuildW)
		if *eagerSpans {
			st.EnableEagerSpans()
		}
		srv = server.NewSharded(st, opt, *cacheCap, *limit)
		if *hotSources > 0 {
			tier := srv.EnableHotTier(*hotSources, *hotBudget)
			defer tier.Close()
			slog.Info("hot-source tier armed", "max_entries", *hotSources, "refresh_budget", *hotBudget)
		}
		slog.Info("serving",
			"nodes", g.NumNodes(), "edges", g.NumEdges(), "addr", *addr,
			"shards", st.NumShards(), "stride", st.Partition().Stride(), "eager_spans", *eagerSpans)
	} else {
		if *hotSources > 0 {
			slog.Warn("-hot-sources requires the sharded backend (-shards > 0); disabled")
		}
		srv = server.New(g, opt, *cacheCap, *limit)
		slog.Info("serving",
			"nodes", g.NumNodes(), "edges", g.NumEdges(), "addr", *addr, "backend", "monolithic")
	}
	serve(srv, addr, queryTimeout, maxInflight, softInflight, degradeF, maxJoins, maxWriteQ, drainTO, traceSlow, traceSample, debugAddr, reg, slotr, nil)
}

// serve installs the admission limits and runs the HTTP server with
// graceful signal-driven drain; shared by the in-process and routed
// topologies. cleanup, when non-nil, runs after the drain completes —
// the durable path uses it to take a final checkpoint and close the log
// so the next boot replays nothing.
func serve(srv *server.Server, addr *string, queryTimeout *time.Duration, maxInflight, softInflight *int, degradeF *float64, maxJoins, maxWriteQ *int, drainTO *time.Duration, traceSlow *time.Duration, traceSample *float64, debugAddr *string, reg *tenant.Registry, slotr *slo.Tracker, cleanup func()) {
	srv.SetLimits(server.Limits{
		MaxInflight:     *maxInflight,
		SoftInflight:    *softInflight,
		DegradeFactor:   *degradeF,
		MaxJoinInflight: *maxJoins,
		MaxWriteQueue:   *maxWriteQ,
		QueryTimeout:    *queryTimeout,
	})
	// After SetLimits: the fair queue's capacity is MaxInflight.
	srv.SetTenants(reg)
	srv.SetSLO(slotr)
	// Tracing is always armed: ?trace=1 must work without a restart, and
	// the armed-but-unsampled path costs one id draw and a header per
	// request. -trace-slow/-trace-sample add the slow-query log and
	// probabilistic sampling on top.
	srv.SetTracer(qtrace.NewTracer(*traceSlow, *traceSample, 0, nil))
	if *debugAddr != "" {
		ln, err := obs.ListenDebug(*debugAddr, map[string]http.Handler{
			"/debug/queries": http.HandlerFunc(srv.ServeHTTP),
		})
		if err != nil {
			fatal("debug listener", "addr", *debugAddr, "err", err)
		}
		slog.Info("pprof", "addr", ln.Addr().String())
		defer ln.Close()
	}
	slog.Info("limits",
		"query_timeout", *queryTimeout, "max_inflight", *maxInflight,
		"soft_inflight", *softInflight, "degrade_factor", *degradeF,
		"max_join_inflight", *maxJoins, "max_write_queue", *maxWriteQ,
		"trace_slow", *traceSlow, "trace_sample", *traceSample)

	// Every request context descends from baseCtx via BaseContext, so the
	// shutdown path below can cancel straggling queries through the same
	// context seam a per-request timeout uses. baseCtx stays live during
	// the drain window — draining means letting in-flight work finish.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	procCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	var err error
	select {
	case err = <-errCh:
		fatal("listen", "err", err)
	case <-procCtx.Done():
	}
	// Readiness goes 503 first: a load balancer polling /readyz stops
	// routing to this instance before the listener starts refusing.
	srv.Health().SetDraining()
	slog.Info("signal received, draining in-flight requests", "drain_timeout", *drainTO)
	// Shutdown stops the listener and waits for in-flight handlers up to
	// the drain deadline. Past it, cancel baseCtx: every straggler's
	// query stops at its next kernel checkpoint and unwinds (499), after
	// which a short second Shutdown reaps the connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	err = hs.Shutdown(drainCtx)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		slog.Warn("drain window expired; canceling straggling queries")
		cancelBase()
		finalCtx, cancelFinal := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelFinal()
		if err := hs.Shutdown(finalCtx); err != nil {
			slog.Error("forced shutdown", "err", err)
		}
	case err != nil:
		slog.Error("shutdown", "err", err)
	}
	if cleanup != nil {
		cleanup()
	}
	slog.Info("bye")
}
